"""Scale the fleet across worker processes with long-lived shards.

One :class:`~repro.fleet.manager.FleetManager` is single-threaded; a
:class:`ShardedFleetManager` partitions the device space over a
:class:`~repro.metrics.parallel.ShardPool` of worker processes, each
hosting its own manager (own LRU, own spool subdirectory). Devices map
to shards by a *stable* hash of their id — ``hashlib`` based, because
Python's builtin ``hash`` is salted per process and would scatter a
device across shards between runs.

Submits are fire-and-forget by default (:meth:`ShardedFleetManager.submit`
returns a ticket); the pool's FIFO-per-shard protocol keeps each
device's chunks ordered, which is all the byte-identity contract needs.

Passing a :class:`~repro.fleet.supervisor.SupervisorConfig` turns on
**self-healing**: every feed is journaled parent-side until the shard's
next checkpoint sync, per-request deadlines catch hung workers
(terminate -> kill -> respawn escalation), a dead shard is respawned
with seeded backoff and its sessions re-materialized from spool
checkpoints plus a position-aware journal replay (byte-identical),
poison devices are quarantined after N strikes, and a fleet-level
degradation ladder sheds load when respawn churn or queue depth says
so. See :mod:`repro.fleet.supervisor` and ``docs/fleet.md``.
"""

from __future__ import annotations

import hashlib
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..engine.spec import ExperimentSpec
from ..guard.ladder import GuardLevel, Transition
from ..metrics.parallel import (
    SHARD_RESTARTED,
    ShardDiedError,
    ShardError,
    ShardPool,
    ShardTimeoutError,
)
from ..utils.exceptions import (
    ConfigurationError,
    DeviceQuarantinedError,
    FleetOverloadError,
)
from ..utils.hooks import default_telemetry
from .manager import FleetManager, FleetStats
from .supervisor import FleetSupervisor, JournalEntry, SupervisorConfig

__all__ = ["ShardedFleetManager", "shard_of"]


def shard_of(device_id: str, n_shards: int) -> int:
    """Deterministic device -> shard mapping (stable across processes)."""
    digest = hashlib.sha256(str(device_id).encode()).digest()
    return int.from_bytes(digest[:8], "big") % int(n_shards)


class _ShardHost:
    """Per-worker wrapper the :class:`ShardPool` factory builds.

    Lives in the worker process; its methods are what ``submit``/``call``
    invoke by name. Must be a module-level class so the factory pickles.

    When the parent's hub was live at pool construction, the worker's own
    default hub is enabled too — everything the shard's pipelines record
    then flows back to the parent as snapshot deltas on the pool's
    collect path (see :class:`~repro.metrics.parallel.ShardPool`).
    """

    def __init__(
        self,
        shard_index: int,
        capacity: int,
        spool_root,
        chunk_size,
        telemetry_enabled: bool = False,
        batch_scoring: bool = False,
    ):
        if telemetry_enabled:
            from ..telemetry import configure

            configure(enabled=True)
        spool = None if spool_root is None else Path(spool_root) / f"shard{shard_index}"
        self.manager = FleetManager(
            capacity=capacity,
            spool_dir=spool,
            chunk_size=chunk_size,
            batch_scoring=batch_scoring,
        )
        self._last_stats: dict = {}

    def _stats_delta(self) -> dict:
        """Scalar stats moved since the last submit reply (piggybacked).

        ``max_resident`` ships absolute (the parent folds it with max);
        everything else is the increment, so the parent's running sum
        tracks this worker's true totals without a round trip.
        """
        cur = self.manager.stats.to_json()
        delta = {}
        for key, value in cur.items():
            if key == "max_resident":
                delta[key] = value
            else:
                moved = value - self._last_stats.get(key, 0)
                if moved:
                    delta[key] = moved
        self._last_stats = cur
        return delta

    def add_device(self, device_id: str, spec_json: dict) -> None:
        self.manager.add_device(device_id, ExperimentSpec.from_json(spec_json))

    def submit(self, device_id: str, Xc, yc) -> dict:
        records = self.manager.submit(device_id, np.asarray(Xc), np.asarray(yc))
        return {"records": len(records), "stats": self._stats_delta()}

    def submit_many(self, batch, contain_errors: bool = False) -> dict:
        records = self.manager.submit_many(
            [(dev, np.asarray(Xc), np.asarray(yc)) for dev, Xc, yc in batch],
            contain_errors=contain_errors,
        )
        return {
            "records": sum(len(recs) for recs in records if recs is not None),
            "dropped": sum(1 for recs in records if recs is None),
            "stats": self._stats_delta(),
        }

    def finish_all(self) -> Dict[str, list]:
        return self.manager.finish_all()

    def stats(self) -> dict:
        return self.manager.stats.to_json(include_devices=True)

    # -- supervision surface (fresh-worker recovery + ladder actions) ----------

    def recover_device(self, device_id: str, spec_json: dict) -> bool:
        """Re-register a device in a respawned worker and adopt its spool."""
        self.manager.add_device(device_id, ExperimentSpec.from_json(spec_json))
        return self.manager.attach_spool(device_id)

    def replay(self, device_id: str, Xc, yc, start: int) -> int:
        return self.manager.replay(
            device_id, np.asarray(Xc), np.asarray(yc), int(start)
        )

    def checkpoint_sessions(self) -> int:
        return self.manager.checkpoint_resident()

    def quarantine_device(self, device_id: str, reason: str) -> None:
        self.manager.quarantine(device_id, reason)

    def shed(self, k: int) -> int:
        return self.manager.shed(int(k))

    def ping(self) -> bool:
        """Cheap liveness round-trip (the chaos harness probes with it)."""
        return True

    def chaos_hang(self, seconds: float) -> float:
        """Chaos-harness hook: wedge this worker for ``seconds``."""
        time.sleep(float(seconds))
        return float(seconds)

    def evict_pick(self, pick: int) -> str:
        """Chaos-harness hook: evict the ``pick``-th resident session.

        Returns the evicted device id (empty string when nothing is
        resident) so the controller can damage that exact spool file.
        """
        resident = sorted(self.manager.resident)
        if not resident:
            return ""
        device_id = resident[int(pick) % len(resident)]
        self.manager.evict_device(device_id)
        return device_id

    def close(self) -> None:
        self.manager.close()


def _make_shard_host(
    shard_index: int,
    capacity,
    spool_root,
    chunk_size,
    telemetry_enabled=False,
    batch_scoring=False,
):
    return _ShardHost(
        shard_index, capacity, spool_root, chunk_size, telemetry_enabled,
        batch_scoring,
    )


class ShardedFleetManager:
    """A fleet partitioned over ``n_shards`` long-lived worker processes.

    The API mirrors :class:`FleetManager` where it can: ``add_device``,
    ``submit``, ``finish_all``, ``stats``, ``close``. ``submit`` is
    asynchronous — it enqueues the chunk on the owning shard and returns
    immediately; per-device ordering is preserved because a device lives
    on exactly one shard and each shard's queue is strict FIFO. Call
    :meth:`drain` (or ``finish_all``, which drains implicitly) to
    surface any worker-side errors.

    With ``supervisor`` set (a
    :class:`~repro.fleet.supervisor.SupervisorConfig`), the manager is
    self-healing: worker death, hangs, and corrupt spool state are
    contained and recovered instead of raised — see the module
    docstring. Supervision requires a ``spool_dir`` (recovery
    re-materializes sessions from spool checkpoints).
    """

    def __init__(
        self,
        n_shards: int,
        capacity: int = 64,
        spool_dir: Optional[str | Path] = None,
        *,
        chunk_size: Optional[int] = None,
        telemetry_every: Optional[int] = 64,
        batch_scoring: bool = False,
        supervisor: Optional[SupervisorConfig] = None,
        ladder=None,
    ) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {n_shards}.")
        if supervisor is not None and spool_dir is None:
            raise ConfigurationError(
                "a supervised fleet needs a spool_dir: shard recovery "
                "re-materializes sessions from spool checkpoints."
            )
        self.n_shards = int(n_shards)
        self.capacity = int(capacity)
        self.batch_scoring = bool(batch_scoring)
        parent_tel = default_telemetry()
        self.supervisor = (
            FleetSupervisor(
                supervisor, self.n_shards, telemetry=parent_tel, ladder=ladder
            )
            if supervisor is not None
            else None
        )
        self._pool = ShardPool(
            self.n_shards,
            _make_shard_host,
            factory_args=(
                int(capacity),
                None if spool_dir is None else str(spool_dir),
                chunk_size,
                bool(parent_tel.enabled),
                bool(batch_scoring),
            ),
            telemetry_every=telemetry_every,
            request_timeout=(
                supervisor.request_timeout if supervisor is not None else None
            ),
        )
        self._pending: List[int] = []
        self._devices: Dict[str, int] = {}
        self._specs: Dict[str, ExperimentSpec] = {}
        self._fed: Dict[str, int] = {}
        #: ticket -> (shard, device_id or None) for incident attribution.
        self._entry_of: Dict[int, tuple] = {}
        #: devices whose records were already collected by finish_all —
        #: a later recovery must not resurrect them from stale spools.
        self._finished: set = set()
        #: running fleet-wide totals folded from the stats deltas each
        #: worker piggybacks on its submit replies (see :meth:`live_stats`).
        self._live: Dict[str, float] = {}
        self._closed = False

    def shard_for(self, device_id: str) -> int:
        return shard_of(device_id, self.n_shards)

    def worker_pid(self, shard: int) -> Optional[int]:
        """OS pid of a shard's worker (the chaos harness SIGKILLs this)."""
        return self._pool.worker_pid(shard)

    def inject_hang(self, shard: int, seconds: float) -> int:
        """Chaos-harness hook: queue a sleep on a shard so it stops
        answering; the next drain's deadline escalates it. Returns the
        ticket (tracked like any pending submit)."""
        if self.supervisor is not None:
            # A prior fault may have killed this worker with its recovery
            # still pending; a fire-and-forget submit into the dead pipe
            # would be silently failed as restart collateral and the hang
            # never observed. Round-trip first so the fault lands on a
            # live worker.
            self._call_supervised(int(shard), "ping")
        ticket = self._pool.submit(int(shard), "chaos_hang", float(seconds))
        self._entry_of[ticket] = (int(shard), None)
        self._pending.append(ticket)
        return ticket

    def force_evict(self, shard: int, pick: int) -> str:
        """Chaos-harness hook: evict one resident session on ``shard`` so
        its next feed must restore from its spool file. Returns the
        evicted device id ('' when the shard has no resident session)."""
        return self._call_supervised(int(shard), "evict_pick", int(pick))

    def health(self) -> dict:
        """Supervisor health dict (``/health`` provider); minimal when
        unsupervised."""
        if self.supervisor is None:
            return {"status": "ok", "level": 0, "supervised": False}
        return self.supervisor.health()

    def add_device(self, device_id: str, spec: ExperimentSpec) -> None:
        device_id = str(device_id)
        shard = self.shard_for(device_id)
        self._devices[device_id] = shard
        if self.supervisor is None:
            self._pool.call(shard, "add_device", device_id, spec.to_json())
            return
        self._specs[device_id] = spec
        try:
            self._pool.call(shard, "add_device", device_id, spec.to_json())
        except (ShardTimeoutError, ShardDiedError):
            self._recover(shard)  # the reseed registers this device too

    def submit(self, device_id: str, Xc: np.ndarray, yc: np.ndarray):
        """Enqueue a chunk on the device's shard; returns a ticket.

        Supervised, this also journals the feed for crash replay, runs
        admission control (quarantine + ladder gate — may raise
        :class:`~repro.utils.exceptions.DeviceQuarantinedError` or
        :class:`~repro.utils.exceptions.FleetOverloadError`), triggers
        the periodic checkpoint sync, and recovers the shard in-line if
        the enqueue itself finds the worker dead (returns ``None`` then:
        the journaled feed was applied during recovery replay).
        """
        device_id = str(device_id)
        shard = self._devices.get(device_id)
        if shard is None:
            raise ConfigurationError(f"unknown device {device_id!r}.")
        sup = self.supervisor
        if sup is None:
            ticket = self._pool.submit(
                shard, "submit", device_id, np.asarray(Xc), np.asarray(yc)
            )
            self._pending.append(ticket)
            return ticket
        sup.gate(device_id)
        sup.tick()
        Xa, ya = np.asarray(Xc), np.asarray(yc)
        start = self._fed.get(device_id, 0)
        needs_sync = sup.journal(shard, JournalEntry(device_id, Xa, ya, start))
        self._fed[device_id] = start + len(Xa)
        ticket = None
        try:
            ticket = self._pool.submit(shard, "submit", device_id, Xa, ya)
        except ShardDiedError:
            self._recover(shard)  # replay applies the journaled feed
        else:
            self._entry_of[ticket] = (shard, device_id)
            self._pending.append(ticket)
        if needs_sync:
            self._sync_shard(shard)
        self._on_transition(sup.note_queue_depth(len(self._pending)))
        return ticket

    def submit_many(self, batch, *, contain_errors: bool = False) -> List:
        """Partition a ``(device_id, Xc, yc)`` batch by shard and enqueue.

        Each shard receives its sub-batch (arrival order preserved) in a
        single message and runs its manager's
        :meth:`~repro.fleet.manager.FleetManager.submit_many` — so the
        batched-scoring windows form *inside* each worker, against that
        shard's own resident sessions. Returns one ticket per shard
        touched; like :meth:`submit`, errors surface on :meth:`drain`.

        Supervised, entries refused by admission control (quarantined
        device, ladder shedding) are *dropped* — counted in the
        supervisor's ``dropped_feeds`` — instead of aborting the whole
        batch. ``contain_errors`` is forwarded to each worker manager so
        a device quarantined *inside* the worker costs only its own
        entries (the serving dispatcher relies on this).
        """
        sup = self.supervisor
        per_shard: Dict[int, list] = {}
        need_sync: set = set()
        for device_id, Xc, yc in batch:
            device_id = str(device_id)
            shard = self._devices.get(device_id)
            if shard is None:
                raise ConfigurationError(f"unknown device {device_id!r}.")
            Xa, ya = np.asarray(Xc), np.asarray(yc)
            if sup is not None:
                try:
                    sup.gate(device_id)
                except (DeviceQuarantinedError, FleetOverloadError):
                    sup.dropped_feeds += 1
                    continue
                sup.tick()
                start = self._fed.get(device_id, 0)
                if sup.journal(shard, JournalEntry(device_id, Xa, ya, start)):
                    need_sync.add(shard)
                self._fed[device_id] = start + len(Xa)
            per_shard.setdefault(shard, []).append((device_id, Xa, ya))
        tickets = []
        for shard, sub_batch in per_shard.items():
            try:
                ticket = self._pool.submit(
                    shard, "submit_many", sub_batch, contain_errors
                )
            except ShardDiedError:
                if sup is None:
                    raise
                self._recover(shard)
                continue
            self._entry_of[ticket] = (shard, None)
            self._pending.append(ticket)
            tickets.append(ticket)
        for shard in need_sync:
            self._sync_shard(shard)
        if sup is not None:
            self._on_transition(sup.note_queue_depth(len(self._pending)))
        return tickets

    def drain(self) -> None:
        """Wait for every outstanding submit.

        Unsupervised this raises the first shard error; supervised it
        *contains* them — hung shards are escalated and respawned, dead
        shards recovered with journal replay, worker-side request
        failures struck against the offending device.

        The unsupervised path collects via
        :meth:`~repro.metrics.parallel.ShardPool.collect_any`, so one
        slow shard no longer blocks folding the replies other shards
        already produced (supervised collection stays per-ticket FIFO —
        recovery attribution needs the oldest outstanding request
        first).
        """
        pending, self._pending = self._pending, []
        if self.supervisor is None:
            remaining = set(pending)
            while remaining:
                ticket, payload = self._pool.collect_any(remaining)
                remaining.discard(ticket)
                self._entry_of.pop(ticket, None)
                self._fold_stats(payload)
            return
        for ticket in pending:
            self._collect_supervised(ticket)

    def _fold_stats(self, payload) -> None:
        """Fold one submit reply's piggybacked stats delta into the
        running live totals."""
        if not isinstance(payload, dict):
            return
        delta = payload.get("stats")
        if not delta:
            return
        for key, value in delta.items():
            if key == "max_resident":
                self._live[key] = max(self._live.get(key, 0), value)
            else:
                self._live[key] = self._live.get(key, 0) + value

    def _collect_supervised(self, ticket: int) -> None:
        sup = self.supervisor
        shard, device_id = self._entry_of.pop(ticket, (None, None))
        try:
            payload = self._pool.collect(ticket)
        except ShardTimeoutError:
            if shard is not None:
                self._recover(shard)
        except ShardDiedError:
            if shard is None:
                raise
            # The oldest outstanding request is the likely killer (FIFO);
            # a chaos SIGKILL also lands here, so death alone is one
            # strike, never an instant quarantine.
            if device_id is not None:
                sup.strike(device_id, "feed killed its shard")
            self._recover(shard)
        except ShardError as exc:
            message = str(exc)
            if SHARD_RESTARTED in message:
                return  # collateral of a restart handled earlier this drain
            if shard is None:
                raise
            if "DeviceQuarantinedError" in message and device_id is not None:
                sup.note_quarantined(device_id, message)
                return
            # Worker alive, request failed: contain it. Strike the device
            # (a poisoned session fails every later feed too) and bench it
            # on the worker once it strikes out.
            if device_id is not None and sup.strike(device_id, message):
                self._call_supervised(
                    shard, "quarantine_device", device_id,
                    sup.quarantined[device_id],
                )
        else:
            self._fold_stats(payload)
            self._on_transition(sup.note_clean())

    # -- supervised recovery ---------------------------------------------------

    def _recover(self, shard: int) -> None:
        """Respawn ``shard`` and re-materialize its fleet; bounded retries."""
        sup = self.supervisor
        config = sup.config
        sup.open_incident()
        t0 = time.perf_counter()
        last_error: Optional[Exception] = None
        for attempt in range(config.max_respawns):
            delay = sup.backoff_seconds(shard, attempt)
            if delay > 0:
                time.sleep(delay)
            outcome = self._pool.restart_shard(shard, grace=config.terminate_grace)
            try:
                replayed = self._reseed_shard(shard)
            except ShardError as exc:
                last_error = exc
                continue
            self._on_transition(
                sup.note_respawn(
                    shard,
                    outcome=outcome,
                    attempt=attempt,
                    replayed=replayed,
                    seconds=time.perf_counter() - t0,
                )
            )
            return
        self._on_transition(
            sup.note_recovery_failed(shard, f"{last_error}")
        )
        raise ShardError(
            f"shard {shard} unrecoverable after {config.max_respawns} "
            f"respawn attempts: {last_error}"
        ) from last_error

    def _reseed_shard(self, shard: int) -> int:
        """Re-register a fresh worker's devices and replay the journal.

        Spool checkpoints (periodic syncs + LRU evictions) carry each
        session to its last durable position; the journal's
        position-aware replay carries it from there to the exact feed
        the fleet had acknowledged — so recovered records are
        byte-identical. Raises :class:`ShardError` when the fresh worker
        dies too (the caller's respawn loop retries with backoff).
        """
        sup = self.supervisor
        for device_id, home in self._devices.items():
            if (
                home != shard
                or device_id in sup.quarantined
                or device_id in self._finished
            ):
                continue
            try:
                self._pool.call(shard, "recover_device", device_id,
                                self._specs[device_id].to_json())
            except ShardTimeoutError:
                raise
            except ShardDiedError:
                sup.strike(device_id, "recovery re-registration killed shard")
                raise
            except ShardError as exc:
                sup.note_quarantined(device_id, f"re-registration failed: {exc}")
        replayed = 0
        for entry in sup.entries(shard):
            if entry.device_id in sup.quarantined:
                continue
            try:
                replayed += int(
                    self._pool.call(
                        shard, "replay", entry.device_id, entry.Xc, entry.yc,
                        entry.start,
                    )
                )
            except ShardTimeoutError:
                raise
            except ShardDiedError:
                sup.strike(entry.device_id, "replay killed its shard")
                raise
            except ShardError as exc:
                message = str(exc)
                if "DeviceQuarantinedError" in message:
                    sup.note_quarantined(entry.device_id, message)
                    continue
                sup.strike(entry.device_id, message)
        # Make the recovered state durable and drop the journal — a
        # second incident replays from here, not from the last pre-crash
        # sync.
        self._pool.call(shard, "checkpoint_sessions")
        sup.truncate(shard)
        return replayed

    def _sync_shard(self, shard: int) -> None:
        """Periodic checkpoint sync: spool the shard's resident sessions
        and truncate its journal (the replay bound)."""
        try:
            self._pool.call(shard, "checkpoint_sessions")
        except (ShardTimeoutError, ShardDiedError):
            self._recover(shard)
        else:
            self.supervisor.truncate(shard)

    def _call_supervised(self, shard: int, method: str, *args):
        """Synchronous shard call that survives one worker death/hang."""
        for retry in (False, True):
            try:
                return self._pool.call(shard, method, *args)
            except (ShardTimeoutError, ShardDiedError):
                if retry:
                    raise
                self._recover(shard)
            except ShardError as exc:
                if SHARD_RESTARTED in str(exc) and not retry:
                    continue
                raise

    def _on_transition(self, transition: Optional[Transition]) -> None:
        """Act on a fleet-ladder move: entering SANITIZING sheds load."""
        if transition is None:
            return
        if (
            transition.to_level == GuardLevel.SANITIZING
            and transition.to_level > transition.from_level
        ):
            k = max(1, int(self.capacity * self.supervisor.config.shed_fraction))
            for shard in range(self.n_shards):
                try:
                    self._call_supervised(shard, "shed", k)
                except ShardError:  # pragma: no cover — shedding is best-effort
                    pass

    # -- fan-out ---------------------------------------------------------------

    def finish_all(self) -> Dict[str, list]:
        """Drain, close every device session, and merge the record maps."""
        self.drain()
        merged: Dict[str, list] = {}
        if self.supervisor is None:
            for reply in self._pool.broadcast("finish_all"):
                merged.update(reply)
            return merged
        for shard in range(self.n_shards):
            reply = self._call_supervised(shard, "finish_all")
            merged.update(reply)
            self._finished.update(reply)
        for device_id in self._devices:
            merged.setdefault(device_id, [])
        return merged

    def shed(self, k: int) -> int:
        """Evict up to ``k`` coldest sessions on *every* shard.

        The serving admission controller calls this when the fleet
        ladder reaches PASSTHROUGH — memory is handed back now, sessions
        restore lazily later. Best-effort: a shard that fails to shed is
        skipped. Returns the total sessions shed.
        """
        total = 0
        for shard in range(self.n_shards):
            try:
                if self.supervisor is None:
                    shed = self._pool.call(shard, "shed", int(k))
                else:
                    shed = self._call_supervised(shard, "shed", int(k))
                total += int(shed or 0)
            except ShardError:  # pragma: no cover — shedding is best-effort
                pass
        return total

    def stats(self) -> List[dict]:
        """Per-shard stat snapshots (as plain dicts from the workers)."""
        self.drain()
        if self.supervisor is None:
            snapshots = self._pool.broadcast("stats")
        else:
            snapshots = [
                self._call_supervised(shard, "stats")
                for shard in range(self.n_shards)
            ]
        # Authoritative collect boundary: re-anchor the live totals so
        # they are exact here and monotone (delta-fed) in between.
        live: Dict[str, float] = {}
        for snap in snapshots:
            for key, value in FleetStats.from_json(snap).to_json().items():
                if key == "max_resident":
                    live[key] = max(live.get(key, 0), value)
                else:
                    live[key] = live.get(key, 0) + value
        self._live = live
        return snapshots

    def live_stats(self) -> dict:
        """Mid-run fleet totals without a collect round trip.

        Folded from the stats deltas every worker piggybacks on its
        submit replies, so a ``/fleet`` dashboard scraped *during* a
        soak sees true running totals instead of zeros-until-boundary.
        Exact at every :meth:`stats`/:meth:`aggregate_stats` boundary;
        between boundaries it trails the workers by at most the
        outstanding (not-yet-collected) submits.
        """
        return dict(self._live)

    def aggregate_stats(self) -> FleetStats:
        """Fleet-wide :class:`FleetStats` summed over every shard.

        This is what ``bench_fleet.py`` and the CLI report for sharded
        runs — evictions/restores/drifts happen inside worker processes,
        so the parent's own manager-less view would read all zeros.
        (After a recovery incident the dead worker's in-memory counters
        are gone; the replacement re-counts only the replayed tail, so
        post-incident totals are best-effort, not exact.)
        """
        total = FleetStats()
        for shard_stats in self.stats():
            total.merge(FleetStats.from_json(shard_stats))
        return total

    def flush_telemetry(self) -> None:
        """Pull every shard hub's outstanding metrics into the parent hub."""
        self.drain()
        self._pool.flush_telemetry()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.close()

    def __enter__(self) -> "ShardedFleetManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
