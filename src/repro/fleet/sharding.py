"""Scale the fleet across worker processes with long-lived shards.

One :class:`~repro.fleet.manager.FleetManager` is single-threaded; a
:class:`ShardedFleetManager` partitions the device space over a
:class:`~repro.metrics.parallel.ShardPool` of worker processes, each
hosting its own manager (own LRU, own spool subdirectory). Devices map
to shards by a *stable* hash of their id — ``hashlib`` based, because
Python's builtin ``hash`` is salted per process and would scatter a
device across shards between runs.

Submits are fire-and-forget by default (:meth:`ShardedFleetManager.submit`
returns a ticket); the pool's FIFO-per-shard protocol keeps each
device's chunks ordered, which is all the byte-identity contract needs.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..engine.spec import ExperimentSpec
from ..metrics.parallel import ShardPool
from ..utils.exceptions import ConfigurationError
from ..utils.hooks import default_telemetry
from .manager import FleetManager, FleetStats

__all__ = ["ShardedFleetManager", "shard_of"]


def shard_of(device_id: str, n_shards: int) -> int:
    """Deterministic device -> shard mapping (stable across processes)."""
    digest = hashlib.sha256(str(device_id).encode()).digest()
    return int.from_bytes(digest[:8], "big") % int(n_shards)


class _ShardHost:
    """Per-worker wrapper the :class:`ShardPool` factory builds.

    Lives in the worker process; its methods are what ``submit``/``call``
    invoke by name. Must be a module-level class so the factory pickles.

    When the parent's hub was live at pool construction, the worker's own
    default hub is enabled too — everything the shard's pipelines record
    then flows back to the parent as snapshot deltas on the pool's
    collect path (see :class:`~repro.metrics.parallel.ShardPool`).
    """

    def __init__(
        self,
        shard_index: int,
        capacity: int,
        spool_root,
        chunk_size,
        telemetry_enabled: bool = False,
        batch_scoring: bool = False,
    ):
        if telemetry_enabled:
            from ..telemetry import configure

            configure(enabled=True)
        spool = None if spool_root is None else Path(spool_root) / f"shard{shard_index}"
        self.manager = FleetManager(
            capacity=capacity,
            spool_dir=spool,
            chunk_size=chunk_size,
            batch_scoring=batch_scoring,
        )

    def add_device(self, device_id: str, spec_json: dict) -> None:
        self.manager.add_device(device_id, ExperimentSpec.from_json(spec_json))

    def submit(self, device_id: str, Xc, yc) -> int:
        return len(self.manager.submit(device_id, np.asarray(Xc), np.asarray(yc)))

    def submit_many(self, batch) -> int:
        records = self.manager.submit_many(
            [(dev, np.asarray(Xc), np.asarray(yc)) for dev, Xc, yc in batch]
        )
        return sum(len(recs) for recs in records)

    def finish_all(self) -> Dict[str, list]:
        return self.manager.finish_all()

    def stats(self) -> dict:
        return self.manager.stats.to_json(include_devices=True)

    def close(self) -> None:
        self.manager.close()


def _make_shard_host(
    shard_index: int,
    capacity,
    spool_root,
    chunk_size,
    telemetry_enabled=False,
    batch_scoring=False,
):
    return _ShardHost(
        shard_index, capacity, spool_root, chunk_size, telemetry_enabled,
        batch_scoring,
    )


class ShardedFleetManager:
    """A fleet partitioned over ``n_shards`` long-lived worker processes.

    The API mirrors :class:`FleetManager` where it can: ``add_device``,
    ``submit``, ``finish_all``, ``stats``, ``close``. ``submit`` is
    asynchronous — it enqueues the chunk on the owning shard and returns
    immediately; per-device ordering is preserved because a device lives
    on exactly one shard and each shard's queue is strict FIFO. Call
    :meth:`drain` (or ``finish_all``, which drains implicitly) to
    surface any worker-side errors.
    """

    def __init__(
        self,
        n_shards: int,
        capacity: int = 64,
        spool_dir: Optional[str | Path] = None,
        *,
        chunk_size: Optional[int] = None,
        telemetry_every: Optional[int] = 64,
        batch_scoring: bool = False,
    ) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {n_shards}.")
        self.n_shards = int(n_shards)
        self.batch_scoring = bool(batch_scoring)
        parent_tel = default_telemetry()
        self._pool = ShardPool(
            self.n_shards,
            _make_shard_host,
            factory_args=(
                int(capacity),
                None if spool_dir is None else str(spool_dir),
                chunk_size,
                bool(parent_tel.enabled),
                bool(batch_scoring),
            ),
            telemetry_every=telemetry_every,
        )
        self._pending: List[tuple] = []
        self._devices: Dict[str, int] = {}
        self._closed = False

    def shard_for(self, device_id: str) -> int:
        return shard_of(device_id, self.n_shards)

    def add_device(self, device_id: str, spec: ExperimentSpec) -> None:
        shard = self.shard_for(device_id)
        self._devices[str(device_id)] = shard
        self._pool.call(shard, "add_device", str(device_id), spec.to_json())

    def submit(self, device_id: str, Xc: np.ndarray, yc: np.ndarray):
        """Enqueue a chunk on the device's shard; returns a ticket."""
        shard = self._devices.get(str(device_id))
        if shard is None:
            raise ConfigurationError(f"unknown device {device_id!r}.")
        ticket = self._pool.submit(
            shard, "submit", str(device_id), np.asarray(Xc), np.asarray(yc)
        )
        self._pending.append(ticket)
        return ticket

    def submit_many(self, batch) -> List:
        """Partition a ``(device_id, Xc, yc)`` batch by shard and enqueue.

        Each shard receives its sub-batch (arrival order preserved) in a
        single message and runs its manager's
        :meth:`~repro.fleet.manager.FleetManager.submit_many` — so the
        batched-scoring windows form *inside* each worker, against that
        shard's own resident sessions. Returns one ticket per shard
        touched; like :meth:`submit`, errors surface on :meth:`drain`.
        """
        per_shard: Dict[int, list] = {}
        for device_id, Xc, yc in batch:
            shard = self._devices.get(str(device_id))
            if shard is None:
                raise ConfigurationError(f"unknown device {device_id!r}.")
            per_shard.setdefault(shard, []).append(
                (str(device_id), np.asarray(Xc), np.asarray(yc))
            )
        tickets = []
        for shard, sub_batch in per_shard.items():
            ticket = self._pool.submit(shard, "submit_many", sub_batch)
            self._pending.append(ticket)
            tickets.append(ticket)
        return tickets

    def drain(self) -> None:
        """Wait for every outstanding submit (raises the first shard error)."""
        pending, self._pending = self._pending, []
        for ticket in pending:
            self._pool.collect(ticket)

    def finish_all(self) -> Dict[str, list]:
        """Drain, close every device session, and merge the record maps."""
        self.drain()
        merged: Dict[str, list] = {}
        for reply in self._pool.broadcast("finish_all"):
            merged.update(reply)
        return merged

    def stats(self) -> List[dict]:
        """Per-shard stat snapshots (as plain dicts from the workers)."""
        self.drain()
        return self._pool.broadcast("stats")

    def aggregate_stats(self) -> FleetStats:
        """Fleet-wide :class:`FleetStats` summed over every shard.

        This is what ``bench_fleet.py`` and the CLI report for sharded
        runs — evictions/restores/drifts happen inside worker processes,
        so the parent's own manager-less view would read all zeros.
        """
        total = FleetStats()
        for shard_stats in self.stats():
            total.merge(FleetStats.from_json(shard_stats))
        return total

    def flush_telemetry(self) -> None:
        """Pull every shard hub's outstanding metrics into the parent hub."""
        self.drain()
        self._pool.flush_telemetry()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.close()

    def __enter__(self) -> "ShardedFleetManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
