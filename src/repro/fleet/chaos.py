"""Seeded chaos harness for the sharded fleet — kill, hang, corrupt.

The supervisor's recovery claims are only worth what survives an actual
SIGKILL, so this module schedules real faults at deterministic points of
a :func:`~repro.fleet.soak.run_fleet_soak` replay:

``kill``
    ``SIGKILL`` a shard's worker process mid-stream — the hard crash.
    Recovery must respawn the shard, re-materialize its sessions from
    spool checkpoints, and replay the journal byte-identically.
``hang``
    Wedge a worker in a long sleep so it stops answering. The
    per-request deadline must catch it and escalate
    (terminate -> kill -> respawn).
``corrupt``
    Flip one bit of a device's spool checkpoint on disk (the flash/SD
    error model from :mod:`repro.resilience.faults`). The next restore
    must quarantine that one device and keep serving the rest.

Like the guard-layer chaos harness (:mod:`repro.guard.chaos`), every
choice — event kind, injection point, victim shard, corrupt target — is
drawn from :func:`numpy.random.default_rng` seeded off the fleet seed,
so a chaos soak is exactly reproducible and its recovery goldens can
assert byte-identity against an unkilled run.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..utils.exceptions import ConfigurationError

__all__ = ["ChaosEvent", "ChaosController", "make_chaos_schedule"]

#: Seed-sequence domain tag for the chaos RNG (distinct from the
#: supervisor's jitter domain and the dataset streams).
_CHAOS_DOMAIN = 0xC4405

#: All fault kinds the controller knows how to inject.
KINDS: Tuple[str, ...] = ("kill", "hang", "corrupt")


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: *what* to break, *when*, and *where*."""

    kind: str
    #: soak chunk index the fault fires at (checked before each submit).
    at_chunk: int
    #: victim shard.
    shard: int
    #: seeded selector for secondary choices (which spool file to flip,
    #: which bit) so injection needs no live RNG.
    pick: int = 0


def make_chaos_schedule(
    n_chunks: int,
    n_shards: int,
    *,
    seed: int = 0,
    n_events: int = 3,
    kinds: Sequence[str] = KINDS,
) -> Tuple[ChaosEvent, ...]:
    """Draw a deterministic fault schedule for one soak.

    Events land in the middle 80% of the replay (a fault before any
    state exists, or after the last feed, proves nothing) at distinct
    chunk indices, cycling through ``kinds`` in order; victim shards and
    ``pick`` selectors come from the same seeded stream.
    """
    for kind in kinds:
        if kind not in KINDS:
            raise ConfigurationError(f"unknown chaos kind {kind!r} (use {KINDS}).")
    if int(n_events) < 1:
        raise ConfigurationError(f"n_events must be >= 1, got {n_events!r}.")
    rng = np.random.default_rng((int(seed), _CHAOS_DOMAIN))
    lo = max(1, int(n_chunks) // 10)
    hi = max(lo + 1, (9 * int(n_chunks)) // 10)
    span = np.arange(lo, hi)
    n = min(int(n_events), len(span))
    at = np.sort(rng.choice(span, size=n, replace=False))
    events = []
    for i, chunk in enumerate(at):
        events.append(
            ChaosEvent(
                kind=kinds[i % len(kinds)],
                at_chunk=int(chunk),
                shard=int(rng.integers(0, int(n_shards))),
                pick=int(rng.integers(0, 2**30)),
            )
        )
    return tuple(events)


class ChaosController:
    """Fires a :func:`make_chaos_schedule` against a live supervised fleet.

    The soak calls :meth:`maybe_inject` with its chunk counter before
    each submit; every due event is injected exactly once and logged to
    :attr:`applied` (kind, chunk, shard, detail) for the soak report.
    """

    def __init__(
        self,
        schedule: Sequence[ChaosEvent],
        manager,
        *,
        spool_dir,
        hang_seconds: Optional[float] = None,
    ) -> None:
        if manager.supervisor is None:
            raise ConfigurationError(
                "chaos injection requires a supervised ShardedFleetManager "
                "(it exists to prove the supervisor's recovery)."
            )
        self.schedule = sorted(schedule, key=lambda e: e.at_chunk)
        self.manager = manager
        self.spool_dir = Path(spool_dir)
        timeout = manager.supervisor.config.request_timeout
        #: a hang must outlive the request deadline or it is not a hang.
        self.hang_seconds = (
            float(hang_seconds)
            if hang_seconds is not None
            else (4.0 * timeout if timeout is not None else 30.0)
        )
        self.applied: List[dict] = []
        self._next = 0

    def maybe_inject(self, chunk_index: int) -> None:
        """Inject every event scheduled at or before ``chunk_index``."""
        while (
            self._next < len(self.schedule)
            and self.schedule[self._next].at_chunk <= chunk_index
        ):
            event = self.schedule[self._next]
            self._next += 1
            detail = self._inject(event)
            self.applied.append(
                {
                    "kind": event.kind,
                    "at_chunk": event.at_chunk,
                    "shard": event.shard,
                    "detail": detail,
                }
            )

    def _inject(self, event: ChaosEvent) -> str:
        shard = int(event.shard) % self.manager.n_shards
        if event.kind == "kill":
            pid = self.manager.worker_pid(shard)
            os.kill(pid, signal.SIGKILL)
            return f"SIGKILL pid {pid}"
        if event.kind == "hang":
            self.manager.inject_hang(shard, self.hang_seconds)
            return f"hang {self.hang_seconds:g}s"
        # corrupt: force-evict one resident session (spooling its fresh
        # state), then flip one bit of that spool — the victim's next
        # feed *must* restore from the damaged file, so the fault is
        # observed deterministically instead of racing later re-spools.
        # Fall through shards until one has a resident session.
        from ..resilience import flip_bit

        for probe in range(self.manager.n_shards):
            candidate = (shard + probe) % self.manager.n_shards
            device_id = self.manager.force_evict(candidate, event.pick)
            if not device_id:
                continue
            target = self.spool_dir / f"shard{candidate}" / f"{device_id}.fleetck"
            # flip a payload bit (past the fixed header) so the load
            # fails its checksum, not its magic.
            size = target.stat().st_size
            bit = (min(size - 1, 64 + event.pick % max(1, size - 65))) * 8 + 3
            flip_bit(target, bit)
            return f"flip_bit {target.name} (shard {candidate})"
        return "corrupt skipped: no resident sessions yet"
