"""Fleet supervision policy: journals, strikes, backoff, and the ladder.

The sharded fleet's failure model is the edge deployment's, one level
up: instead of a sensor feeding garbage into one pipeline, a whole
worker process SIGKILLs, wedges, or comes back to a corrupt checkpoint.
This module is the *policy* half of the self-healing answer — pure
bookkeeping, no processes:

* a **per-shard in-flight journal** of every feed since that shard's
  last checkpoint sync, bounded by the sync cadence, so a dead shard's
  sessions can be re-materialized from spool checkpoints and the tail
  replayed byte-identically;
* **deterministic backoff** — respawn jitter is derived from the fleet
  seed (not the wall clock), so a chaos soak schedules and recovers the
  same way every run and its golden tests are reproducible;
* **poison-device strikes** — a device whose feeds repeatedly fail (or
  kill) its shard is quarantined after ``strikes`` incidents instead of
  retried forever;
* a **fleet-level ladder** reusing the :mod:`repro.guard` hysteresis
  vocabulary (:class:`~repro.guard.ladder.DegradationLadder`): respawn
  churn and queue depth are "faults", failed recoveries are "sentinel
  trips"; ``SANITIZING`` sheds the coldest sessions, ``PASSTHROUGH``
  and above reject new submissions, ``FROZEN`` is sticky.

The *mechanics* half — respawning workers, re-registering devices,
replaying the journal — lives in
:class:`~repro.fleet.sharding.ShardedFleetManager`, which owns the
process pool and consults this object at every step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..guard.ladder import DegradationLadder, GuardLevel, Transition
from ..utils.exceptions import (
    ConfigurationError,
    DeviceQuarantinedError,
    FleetOverloadError,
)
from ..utils.hooks import default_telemetry

__all__ = ["SupervisorConfig", "FleetSupervisor", "JournalEntry"]

#: Seed-sequence domain tag so supervisor jitter never collides with the
#: dataset/pipeline RNG streams derived from the same fleet seed.
_JITTER_DOMAIN = 0xF1EE7

#: Recovery-latency histogram edges (seconds) — respawn + re-register +
#: replay for one shard.
RECOVERY_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


@dataclass(frozen=True)
class JournalEntry:
    """One journaled feed: everything needed to re-apply it after a crash."""

    device_id: str
    Xc: np.ndarray
    yc: np.ndarray
    #: stream-global index of ``Xc[0]`` at original submit time — replay
    #: is position-aware, so a checkpoint that already covers a prefix
    #: of this entry only replays the tail.
    start: int


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs for :class:`FleetSupervisor` (all have safe defaults).

    ``request_timeout`` is the per-request deadline on the shard pool's
    collect path; a shard silent for that long is escalated
    (terminate -> kill -> respawn). ``checkpoint_every`` is the journal
    sync cadence in feeds per shard — the upper bound on replay work
    after a crash. ``strikes`` benches a poison device after that many
    incidents. ``max_respawns`` bounds one recovery incident's respawn
    attempts before the ladder records a failed recovery. The ladder
    thresholds reuse the :class:`~repro.guard.ladder.DegradationLadder`
    vocabulary with the fleet's own units: faults are respawns or
    queue-depth breaches (indexed by submit count), trips are failed
    recoveries, cleans are collected replies.
    """

    request_timeout: Optional[float] = 30.0
    terminate_grace: float = 1.0
    max_respawns: int = 5
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    strikes: int = 3
    checkpoint_every: int = 64
    max_pending: int = 4096
    shed_fraction: float = 0.5
    trip_faults: int = 3
    fault_window: int = 256
    freeze_trips: int = 3
    trip_window: int = 4096
    cooldown: int = 256
    seed: int = 0

    def __post_init__(self) -> None:
        if self.request_timeout is not None and float(self.request_timeout) <= 0:
            raise ConfigurationError(
                f"request_timeout must be positive or None, got {self.request_timeout!r}."
            )
        for label, v in (
            ("max_respawns", self.max_respawns),
            ("strikes", self.strikes),
            ("checkpoint_every", self.checkpoint_every),
            ("max_pending", self.max_pending),
        ):
            if int(v) < 1:
                raise ConfigurationError(f"{label} must be >= 1, got {v!r}.")
        if not 0.0 < float(self.shed_fraction) <= 1.0:
            raise ConfigurationError(
                f"shed_fraction must be in (0, 1], got {self.shed_fraction!r}."
            )


class FleetSupervisor:
    """Bookkeeping core of the self-healing fleet (no processes here).

    One instance lives in the parent next to a
    :class:`~repro.fleet.sharding.ShardedFleetManager`; the manager
    journals every feed, reports every incident, and asks this object
    what to do next. All randomness is derived from
    ``config.seed`` via :func:`numpy.random.default_rng` seed
    sequences, so two runs that see the same incident sequence take the
    same backoff path.
    """

    def __init__(
        self,
        config: SupervisorConfig,
        n_shards: int,
        *,
        telemetry=None,
        ladder: Optional[DegradationLadder] = None,
    ) -> None:
        if int(n_shards) < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards!r}.")
        self.config = config
        self.n_shards = int(n_shards)
        self.telemetry = telemetry if telemetry is not None else default_telemetry()
        # An injected ladder makes this supervisor share its degradation
        # state with another authority — the serving admission controller
        # passes its own ladder in, so network backpressure and shard
        # supervision escalate and de-escalate as one.
        self.ladder = ladder if ladder is not None else DegradationLadder(
            trip_faults=config.trip_faults,
            fault_window=config.fault_window,
            freeze_trips=config.freeze_trips,
            trip_window=config.trip_window,
            cooldown=config.cooldown,
        )
        self._journals: List[List[JournalEntry]] = [[] for _ in range(self.n_shards)]
        self._strikes: Dict[str, int] = {}
        self.quarantined: Dict[str, str] = {}
        self.transitions: List[Transition] = []
        #: monotone event index the ladder windows run over (one tick per
        #: submit or collect — the fleet's "stream position").
        self.clock = 0
        self.respawns = 0
        self.incidents = 0
        self.replayed_samples = 0
        self.recoveries = 0
        self.failed_recoveries = 0
        self.rejected_submits = 0
        #: batch entries dropped (not raised) by submit_many's admission.
        self.dropped_feeds = 0
        self.recovery_seconds = 0.0

    # -- journal ---------------------------------------------------------------

    def journal(self, shard: int, entry: JournalEntry) -> bool:
        """Record one feed; returns True when the shard is due a sync.

        A sync (``FleetManager.checkpoint_resident`` on the worker,
        :meth:`truncate` here) bounds the journal — and therefore both
        recovery replay work and parent-side memory — to
        ``checkpoint_every`` feeds per shard.
        """
        journal = self._journals[int(shard)]
        journal.append(entry)
        return len(journal) >= self.config.checkpoint_every

    def truncate(self, shard: int) -> None:
        """Drop a shard's journal after a successful checkpoint sync."""
        self._journals[int(shard)].clear()

    def entries(self, shard: int) -> Tuple[JournalEntry, ...]:
        """The shard's un-checkpointed feeds, oldest first."""
        return tuple(self._journals[int(shard)])

    def journal_depth(self, shard: int) -> int:
        return len(self._journals[int(shard)])

    # -- deterministic backoff -------------------------------------------------

    def backoff_seconds(self, shard: int, attempt: int) -> float:
        """Bounded exponential backoff with *seeded* jitter.

        Attempt 0 retries immediately; attempt ``k`` waits
        ``backoff_base * 2**(k-1)`` seconds (capped at ``backoff_max``)
        scaled by a jitter in ``[0.5, 1.5)`` drawn from a seed sequence
        of ``(seed, domain, shard, incident, attempt)`` — never the wall
        clock, so chaos soaks and their golden tests replay identically.
        """
        if attempt <= 0:
            return 0.0
        rng = np.random.default_rng(
            (int(self.config.seed), _JITTER_DOMAIN, int(shard), self.incidents, attempt)
        )
        base = min(
            self.config.backoff_base * (2.0 ** (attempt - 1)), self.config.backoff_max
        )
        return float(base * (0.5 + rng.random()))

    # -- admission / ladder ----------------------------------------------------

    @property
    def level(self) -> GuardLevel:
        return self.ladder.level

    def tick(self) -> int:
        self.clock += 1
        return self.clock

    def gate(self, device_id: str) -> None:
        """Admission control for one submission (call before enqueueing).

        Raises :class:`DeviceQuarantinedError` for benched devices and
        :class:`FleetOverloadError` while the ladder sheds load
        (``PASSTHROUGH`` or above).
        """
        device_id = str(device_id)
        if device_id in self.quarantined:
            raise DeviceQuarantinedError(device_id, self.quarantined[device_id])
        if self.ladder.level >= GuardLevel.PASSTHROUGH:
            self.rejected_submits += 1
            tel = self.telemetry
            if tel.enabled:
                tel.counter(
                    "fleet.supervisor.rejected",
                    "submissions rejected while shedding load",
                ).inc()
            raise FleetOverloadError(
                f"fleet ladder at {self.ladder.level.name}: new submissions "
                "are rejected until the cooldown clears."
            )

    def note_queue_depth(self, depth: int) -> Optional[Transition]:
        """Pending-reply backlog check; a breach counts as a ladder fault."""
        if depth <= self.config.max_pending:
            return None
        return self._ladder_event(self.ladder.record_fault(self.clock))

    def note_clean(self) -> Optional[Transition]:
        """One successfully collected reply (the ladder's clean sample)."""
        self.tick()
        return self._ladder_event(self.ladder.record_clean(self.clock))

    # -- incident intake -------------------------------------------------------

    def open_incident(self) -> int:
        """Start one recovery incident; returns its index (for jitter)."""
        self.incidents += 1
        return self.incidents

    def note_respawn(
        self,
        shard: int,
        *,
        outcome: str,
        attempt: int,
        replayed: int,
        seconds: float,
    ) -> Optional[Transition]:
        """Record one successful shard recovery (respawn + replay)."""
        self.respawns += 1
        self.recoveries += 1
        self.replayed_samples += int(replayed)
        self.recovery_seconds += float(seconds)
        tel = self.telemetry
        if tel.enabled:
            tel.counter(
                "fleet.supervisor.respawns",
                "shard workers respawned after death or escalation",
            ).inc()
            tel.counter(
                "fleet.supervisor.replayed_samples",
                "journaled samples re-fed during shard recovery",
            ).inc(int(replayed))
            tel.histogram(
                "fleet.supervisor.recovery.seconds",
                "wall time to respawn, re-register, and replay one shard",
                buckets=RECOVERY_BUCKETS,
            ).observe(float(seconds))
            tel.emit(
                "fleet_shard_respawned",
                shard=int(shard),
                outcome=outcome,
                attempt=int(attempt),
                replayed_samples=int(replayed),
                seconds=float(seconds),
            )
        return self._ladder_event(self.ladder.record_fault(self.clock))

    def note_recovery_failed(self, shard: int, reason: str) -> Optional[Transition]:
        """A shard could not be recovered within ``max_respawns`` attempts."""
        self.failed_recoveries += 1
        tel = self.telemetry
        if tel.enabled:
            tel.counter(
                "fleet.supervisor.failed_recoveries",
                "recovery incidents abandoned after max_respawns",
            ).inc()
            tel.emit("fleet_recovery_failed", shard=int(shard), reason=reason)
        return self._ladder_event(
            self.ladder.record_trip(self.clock, reason=f"shard {shard}: {reason}")
        )

    def strike(self, device_id: str, reason: str) -> bool:
        """One incident attributed to ``device_id``; True once quarantined."""
        device_id = str(device_id)
        if device_id in self.quarantined:
            return True
        count = self._strikes.get(device_id, 0) + 1
        self._strikes[device_id] = count
        if count < self.config.strikes:
            return False
        self.note_quarantined(
            device_id, f"{count} strikes ({reason})"
        )
        return True

    def note_quarantined(self, device_id: str, reason: str) -> None:
        """Mark a device benched (worker-declared or strike-escalated)."""
        device_id = str(device_id)
        if device_id in self.quarantined:
            return
        self.quarantined[device_id] = str(reason)
        tel = self.telemetry
        if tel.enabled:
            tel.counter(
                "fleet.supervisor.quarantines",
                "devices benched by the fleet supervisor",
            ).inc()
            tel.emit(
                "fleet_device_quarantined", device=device_id, reason=str(reason)
            )

    def strikes(self, device_id: str) -> int:
        return self._strikes.get(str(device_id), 0)

    # -- surfacing -------------------------------------------------------------

    def _ladder_event(self, transition: Optional[Transition]) -> Optional[Transition]:
        if transition is None:
            return None
        self.transitions.append(transition)
        tel = self.telemetry
        if tel.enabled:
            tel.gauge(
                "fleet.supervisor.level", "fleet degradation-ladder level"
            ).set(int(transition.to_level))
            tel.emit(
                "fleet_ladder_transition",
                from_level=transition.from_level.name,
                to_level=transition.to_level.name,
                reason=transition.reason,
            )
        return transition

    def health(self) -> dict:
        """Status dict for the ``/health`` endpoint (degraded when not
        HEALTHY — :func:`repro.telemetry.httpd.ladder_health` keys off
        ``level``)."""
        level = self.ladder.level
        return {
            "status": "ok" if level == GuardLevel.HEALTHY else "degraded",
            "level": int(level),
            "level_name": level.name,
            "respawns": self.respawns,
            "recoveries": self.recoveries,
            "failed_recoveries": self.failed_recoveries,
            "replayed_samples": self.replayed_samples,
            "quarantined": len(self.quarantined),
            "rejected_submits": self.rejected_submits,
            "recovery_seconds": self.recovery_seconds,
            "transitions": [
                {
                    "index": t.index,
                    "from": t.from_level.name,
                    "to": t.to_level.name,
                    "reason": t.reason,
                }
                for t in self.transitions
            ],
        }

    def to_json(self) -> dict:
        """Counter snapshot folded into soak/bench reports."""
        return {
            "respawns": self.respawns,
            "incidents": self.incidents,
            "recoveries": self.recoveries,
            "failed_recoveries": self.failed_recoveries,
            "replayed_samples": self.replayed_samples,
            "quarantined": dict(self.quarantined),
            "rejected_submits": self.rejected_submits,
            "recovery_seconds": self.recovery_seconds,
            "level": int(self.ladder.level),
        }
