"""Multi-tenant session host: thousands of device streams, one engine.

A :class:`FleetManager` owns one :class:`~repro.engine.session.StreamSession`
per registered device and multiplexes them through a single process.
Resident sessions are bounded by an LRU capacity; the coldest session is
evicted to a :mod:`repro.resilience` checkpoint container (pipeline +
guard state plus its column-encoded records) and lazily restored the
next time that device's samples arrive. Because a pipeline rebuilt from
its :class:`~repro.engine.spec.ExperimentSpec` is deterministic and
record streams are chunk-boundary invariant, an evicted-and-restored
device produces records **byte-identical** to one that ran alone — the
fleet golden suite pins this for every registered pipeline family.

Telemetry mirrors the per-flow labelling of edge NIDS exporters (one
time series per device, like per-``src_ip`` packet counters): with the
hub enabled, ``fleet.device.samples`` / ``fleet.device.drifts`` carry a
``device`` label, and the manager-level eviction/restore counters and
the ``fleet.resident_sessions`` gauge track cache behaviour.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..engine.interceptors import (
    ChunkScheduler,
    GuardInterceptor,
    TelemetryInterceptor,
)
from ..engine.session import StreamSession
from ..engine.spec import ExperimentSpec
from ..utils.exceptions import (
    CheckpointError,
    ConfigurationError,
    DeviceQuarantinedError,
)
from ..utils.hooks import default_telemetry
from .batching import BatchPlanner

__all__ = ["FleetManager", "FleetStats"]

#: Histogram edges for batch-group sizes (devices sharing one GEMM).
BATCH_GROUP_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Checkpoint container kind for evicted sessions (see repro.resilience).
SESSION_KIND = "fleet-session"


@dataclass
class FleetStats:
    """Counters the manager keeps regardless of telemetry state."""

    devices: int = 0
    samples: int = 0
    chunks: int = 0
    builds: int = 0
    evictions: int = 0
    restores: int = 0
    max_resident: int = 0
    evict_seconds: float = 0.0
    restore_seconds: float = 0.0
    batch_groups: int = 0
    batched_samples: int = 0
    fallback_samples: int = 0
    quarantined: int = 0
    corrupt_checkpoints: int = 0
    session_checkpoints: int = 0
    shed_sessions: int = 0
    device_samples: Dict[str, int] = field(default_factory=dict)
    device_drifts: Dict[str, int] = field(default_factory=dict)

    @property
    def drifts(self) -> int:
        """Total drift detections across every device."""
        return sum(self.device_drifts.values())

    def to_json(self, *, include_devices: bool = False) -> dict:
        out = {
            "devices": self.devices,
            "samples": self.samples,
            "chunks": self.chunks,
            "builds": self.builds,
            "evictions": self.evictions,
            "restores": self.restores,
            "drifts": self.drifts,
            "max_resident": self.max_resident,
            "evict_seconds": self.evict_seconds,
            "restore_seconds": self.restore_seconds,
            "batch_groups": self.batch_groups,
            "batched_samples": self.batched_samples,
            "fallback_samples": self.fallback_samples,
            "quarantined": self.quarantined,
            "corrupt_checkpoints": self.corrupt_checkpoints,
            "session_checkpoints": self.session_checkpoints,
            "shed_sessions": self.shed_sessions,
        }
        if include_devices:
            out["device_samples"] = dict(self.device_samples)
            out["device_drifts"] = dict(self.device_drifts)
        return out

    @classmethod
    def from_json(cls, data: Mapping) -> "FleetStats":
        return cls(
            devices=int(data.get("devices", 0)),
            samples=int(data.get("samples", 0)),
            chunks=int(data.get("chunks", 0)),
            builds=int(data.get("builds", 0)),
            evictions=int(data.get("evictions", 0)),
            restores=int(data.get("restores", 0)),
            max_resident=int(data.get("max_resident", 0)),
            evict_seconds=float(data.get("evict_seconds", 0.0)),
            restore_seconds=float(data.get("restore_seconds", 0.0)),
            batch_groups=int(data.get("batch_groups", 0)),
            batched_samples=int(data.get("batched_samples", 0)),
            fallback_samples=int(data.get("fallback_samples", 0)),
            quarantined=int(data.get("quarantined", 0)),
            corrupt_checkpoints=int(data.get("corrupt_checkpoints", 0)),
            session_checkpoints=int(data.get("session_checkpoints", 0)),
            shed_sessions=int(data.get("shed_sessions", 0)),
            device_samples=dict(data.get("device_samples", {})),
            device_drifts=dict(data.get("device_drifts", {})),
        )

    def merge(self, other: "FleetStats") -> "FleetStats":
        """Fold another manager's stats in (sharded fleets aggregate with
        this): counts sum, ``max_resident`` takes the max — each shard's
        LRU is independent, so residency never exceeds the largest shard's.
        """
        self.devices += other.devices
        self.samples += other.samples
        self.chunks += other.chunks
        self.builds += other.builds
        self.evictions += other.evictions
        self.restores += other.restores
        self.max_resident = max(self.max_resident, other.max_resident)
        self.evict_seconds += other.evict_seconds
        self.restore_seconds += other.restore_seconds
        self.batch_groups += other.batch_groups
        self.batched_samples += other.batched_samples
        self.fallback_samples += other.fallback_samples
        self.quarantined += other.quarantined
        self.corrupt_checkpoints += other.corrupt_checkpoints
        self.session_checkpoints += other.session_checkpoints
        self.shed_sessions += other.shed_sessions
        for dev, n in other.device_samples.items():
            self.device_samples[dev] = self.device_samples.get(dev, 0) + n
        for dev, n in other.device_drifts.items():
            self.device_drifts[dev] = self.device_drifts.get(dev, 0) + n
        return self


class FleetManager:
    """Drive many device pipelines through one process with bounded memory.

    Parameters
    ----------
    capacity:
        Maximum number of *resident* (live, in-memory) sessions. The
        least-recently-submitted device is evicted to its checkpoint
        file when a new session would exceed this.
    spool_dir:
        Directory for eviction checkpoints. Created on first eviction.
    chunk_size:
        Sub-chunk size for every device's :class:`ChunkScheduler`
        (``None`` = each pipeline's ``default_chunk_size``). A device
        spec's own ``chunk_size`` takes precedence.
    telemetry:
        Hub for the per-device metrics; defaults to the process hub.
    batch_scoring:
        Enable the cross-session batched scoring path for
        :meth:`submit_many` (see :mod:`repro.fleet.batching`). Off by
        default; plain :meth:`submit` is unaffected either way.

    Usage::

        fm = FleetManager(capacity=64, spool_dir=tmp)
        fm.add_device("dev0", spec)
        recs = fm.submit("dev0", Xc, yc)   # records for this chunk
        all_records = fm.finish("dev0")    # close + full record list
    """

    def __init__(
        self,
        capacity: int = 64,
        spool_dir: Optional[str | Path] = None,
        *,
        chunk_size: Optional[int] = None,
        telemetry=None,
        batch_scoring: bool = False,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}.")
        self.capacity = int(capacity)
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        self.chunk_size = chunk_size
        self.telemetry = telemetry if telemetry is not None else default_telemetry()
        self.batch_scoring = bool(batch_scoring)
        self._planner = BatchPlanner()
        self.stats = FleetStats()
        self._specs: Dict[str, ExperimentSpec] = {}
        self._resident: "OrderedDict[str, StreamSession]" = OrderedDict()
        self._evicted: Dict[str, Path] = {}
        self._finished: Dict[str, List] = {}
        self._quarantined: Dict[str, str] = {}
        self._closed = False

    # -- registration ----------------------------------------------------------

    def add_device(self, device_id: str, spec: ExperimentSpec) -> None:
        """Register a device. Its pipeline is built lazily on first submit."""
        self._check_open()
        if device_id in self._specs:
            raise ConfigurationError(f"device {device_id!r} is already registered.")
        self._specs[str(device_id)] = spec
        self.stats.devices += 1

    @property
    def devices(self) -> List[str]:
        return list(self._specs)

    @property
    def resident(self) -> List[str]:
        """Device ids currently holding a live session (LRU order, coldest first)."""
        return list(self._resident)

    @property
    def quarantined(self) -> Dict[str, str]:
        """Benched devices: ``device_id -> reason`` (see :meth:`quarantine`)."""
        return dict(self._quarantined)

    # -- the hot path ----------------------------------------------------------

    def submit(self, device_id: str, Xc: np.ndarray, yc: np.ndarray) -> list:
        """Feed one arriving chunk to ``device_id``; returns its records.

        Touches the device in the LRU, restoring (or first-building) its
        session if it is not resident and evicting the coldest resident
        session when over capacity.
        """
        self._check_open()
        if device_id in self._quarantined:
            raise DeviceQuarantinedError(device_id, self._quarantined[device_id])
        session = self._touch(device_id)
        records = session.feed(Xc, yc)
        n = len(Xc)
        self.stats.samples += n
        self.stats.chunks += 1
        self.stats.device_samples[device_id] = (
            self.stats.device_samples.get(device_id, 0) + n
        )
        drifts = sum(1 for r in records if r.drift_detected)
        if drifts:
            self.stats.device_drifts[device_id] = (
                self.stats.device_drifts.get(device_id, 0) + drifts
            )
        tel = self.telemetry
        if tel.enabled:
            tel.counter(
                "fleet.device.samples", "samples consumed per device", labels=("device",)
            ).inc(n, device=device_id)
            if drifts:
                tel.counter(
                    "fleet.device.drifts", "drift detections per device", labels=("device",)
                ).inc(drifts, device=device_id)
        return records

    def submit_many(
        self, batch: List[tuple], *, contain_errors: bool = False
    ) -> List[list]:
        """Feed many arriving chunks, batching the forward passes.

        ``batch`` is a list of ``(device_id, Xc, yc)`` in arrival order;
        the return value is the per-submission record lists, parallel to
        the input. Per-device chunk order is preserved exactly (sessions
        are independent streams, so cross-device order carries no
        meaning). With ``batch_scoring`` off this is just a loop over
        :meth:`submit`.

        ``contain_errors=True`` turns a quarantined device (pre-benched
        or benched mid-batch by a corrupt spool restore) into a ``None``
        entry in the result list instead of aborting the whole batch —
        the serving dispatcher needs one poisoned device to cost exactly
        its own chunks, never the window's.

        With it on, the batch is cut into *windows* of at most
        ``capacity`` distinct devices (so the whole window can be
        resident at once — evictions happen while touching, before any
        priming). Each window's sessions are grouped by
        :func:`~repro.fleet.batching.model_signature`; every group is
        scored in one stacked GEMM and primed, then the window feeds
        sequentially as usual, with each pipeline consuming its primed
        rows. Ineligible sessions (guard attached, drift window open,
        reconstruction or refit in flight, per-sample trainers) fall
        back to the sequential path — and records stay byte-identical
        either way (the batched golden suite pins this).
        """
        self._check_open()
        if not self.batch_scoring:
            if not contain_errors:
                return [self.submit(dev, Xc, yc) for dev, Xc, yc in batch]
            return [self._submit_contained(dev, Xc, yc) for dev, Xc, yc in batch]
        out: List[list] = []
        start = 0
        while start < len(batch):
            stop = start
            window_devices: Dict[str, List[np.ndarray]] = {}
            while stop < len(batch):
                device_id = str(batch[stop][0])
                if contain_errors and device_id in self._quarantined:
                    # Not primed (priming would resurrect its session);
                    # its submit below yields the contained None.
                    stop += 1
                    continue
                if (
                    device_id not in window_devices
                    and len(window_devices) >= self.capacity
                ):
                    break
                window_devices.setdefault(device_id, []).append(
                    np.asarray(batch[stop][1], dtype=np.float64)
                )
                stop += 1
            self._prime_window(window_devices, contain_errors=contain_errors)
            for dev, Xc, yc in batch[start:stop]:
                if contain_errors:
                    out.append(self._submit_contained(dev, Xc, yc))
                else:
                    out.append(self.submit(dev, Xc, yc))
            for device_id in window_devices:
                session = self._resident.get(device_id)
                if session is not None:
                    model = getattr(session.pipeline, "model", None)
                    if model is not None:
                        model.clear_primed()
            start = stop
        return out

    def _submit_contained(self, device_id: str, Xc, yc):
        """One :meth:`submit` with quarantine contained to a ``None`` result."""
        try:
            return self.submit(device_id, Xc, yc)
        except DeviceQuarantinedError:
            return None

    def _prime_window(
        self,
        window_devices: Dict[str, List[np.ndarray]],
        *,
        contain_errors: bool = False,
    ) -> None:
        """Group one window's pending rows, run the GEMMs, prime models."""
        items = []
        for device_id, chunks in window_devices.items():
            try:
                session = self._touch(device_id)
            except DeviceQuarantinedError:
                if not contain_errors:
                    raise
                continue  # benched by a corrupt restore; submit contains it
            rows = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            items.append((device_id, session.pipeline, rows))
        groups, fallback = self._planner.plan(items)
        tel = self.telemetry
        for group in groups:
            t0 = time.perf_counter()
            n = group.prime()
            gemm_seconds = time.perf_counter() - t0
            self.stats.batch_groups += 1
            self.stats.batched_samples += n
            if tel.enabled:
                tel.histogram(
                    "fleet.batch.group.devices",
                    "sessions sharing one stacked forward pass",
                    buckets=BATCH_GROUP_BUCKETS,
                ).observe(group.n_devices)
                tel.histogram(
                    "fleet.batch.gemm.seconds",
                    "wall time of one grouped scoring GEMM",
                ).observe(gemm_seconds)
                tel.counter(
                    "fleet.batch.samples",
                    "samples scored via the batched vs sequential path",
                    labels=("path",),
                ).inc(n, path="batched")
        fallback_samples = sum(n for _, n in fallback)
        if fallback_samples:
            self.stats.fallback_samples += fallback_samples
            if tel.enabled:
                tel.counter(
                    "fleet.batch.samples",
                    "samples scored via the batched vs sequential path",
                    labels=("path",),
                ).inc(fallback_samples, path="fallback")

    def finish(self, device_id: str) -> list:
        """Close ``device_id``'s session and return its full record list.

        A never-submitted device finishes with an empty record list; an
        evicted device is restored first so ``on_complete`` still fires.
        """
        self._check_open()
        if device_id in self._finished:
            return self._finished[device_id]
        if device_id not in self._specs:
            raise ConfigurationError(f"unknown device {device_id!r}.")
        if device_id in self._quarantined or (
            device_id not in self._resident and device_id not in self._evicted
        ):
            self._finished[device_id] = []
            return []
        session = self._touch(device_id)
        records = session.close()
        del self._resident[device_id]
        self._finished[device_id] = records
        self._set_resident_gauge()
        return records

    def finish_all(self) -> Dict[str, list]:
        """Finish every registered device; returns ``device_id -> records``."""
        return {dev: self.finish(dev) for dev in self._specs}

    # -- fault-tolerance surface (used by repro.fleet.supervisor) --------------

    def quarantine(self, device_id: str, reason: str) -> None:
        """Bench a device: drop its session/spool, refuse further samples.

        The quarantine policy turns one poisoned device into a contained,
        observable incident instead of a manager-killing exception: the
        device's live session is aborted, its spool entry is dropped,
        and every later :meth:`submit` for it raises
        :class:`DeviceQuarantinedError` while the rest of the fleet
        keeps serving. Emits a structured ``fleet_device_quarantined``
        event. Idempotent per device.
        """
        self._check_open()
        device_id = str(device_id)
        if device_id not in self._specs:
            raise ConfigurationError(f"unknown device {device_id!r}.")
        if device_id in self._quarantined:
            return
        session = self._resident.pop(device_id, None)
        if session is not None:
            session.abort()
            self._set_resident_gauge()
        self._evicted.pop(device_id, None)
        self._quarantined[device_id] = str(reason)
        self.stats.quarantined += 1
        tel = self.telemetry
        if tel.enabled:
            tel.counter("fleet.quarantines", "devices benched by the fleet").inc()
            tel.emit(
                "fleet_device_quarantined", device=device_id, reason=str(reason)
            )

    def checkpoint_resident(self) -> int:
        """Spool every resident session's state *without* evicting it.

        The supervisor calls this periodically so a worker that dies
        between checkpoints only needs the (bounded) journal of feeds
        since the last sync replayed on top of the restored state —
        recovery cost is O(journal), not O(stream). Returns the number
        of sessions checkpointed.
        """
        self._check_open()
        n = 0
        for device_id, session in list(self._resident.items()):
            self._spool_session(device_id, session)
            n += 1
        self.stats.session_checkpoints += n
        tel = self.telemetry
        if tel.enabled and n:
            tel.counter(
                "fleet.session_checkpoints",
                "resident sessions spooled by periodic supervision syncs",
            ).inc(n)
        return n

    def evict_device(self, device_id: str) -> bool:
        """Spool one named resident session and drop it from memory.

        The chaos harness uses this to stage a corrupt-checkpoint fault
        deterministically: evict the victim so its *next* feed must
        restore from the (about-to-be-damaged) spool file. Returns
        ``False`` when the device is not resident.
        """
        self._check_open()
        device_id = str(device_id)
        session = self._resident.pop(device_id, None)
        if session is None:
            return False
        path = self._spool_session(device_id, session)
        session.close()
        self._evicted[device_id] = path
        self.stats.evictions += 1
        tel = self.telemetry
        if tel.enabled:
            tel.counter("fleet.evictions", "sessions evicted to spool").inc()
        return True

    def attach_spool(self, device_id: str) -> bool:
        """Adopt an on-disk spool checkpoint for a registered device.

        Used when re-materializing a dead shard's fleet in a fresh
        worker: the new manager never evicted anything, but the old
        worker's spool files survived it. Returns ``True`` when a spool
        file was found (the next submit restores from it), ``False``
        when the device starts from scratch.
        """
        self._check_open()
        device_id = str(device_id)
        if device_id not in self._specs:
            raise ConfigurationError(f"unknown device {device_id!r}.")
        if (
            device_id in self._resident
            or device_id in self._finished
            or device_id in self._quarantined
        ):
            return False
        path = self._spool_path(device_id)
        if path.is_file():
            self._evicted[device_id] = path
            return True
        return False

    def replay(self, device_id: str, Xc: np.ndarray, yc: np.ndarray, start: int) -> int:
        """Position-aware re-feed of a journaled chunk after recovery.

        ``start`` is the stream-global index of ``Xc[0]`` when the chunk
        was originally submitted. The restored session may already
        contain a prefix of it (the periodic checkpoint landed mid-way
        through the journal), so only the samples past the session's
        current position are fed — chunk-boundary invariance keeps the
        partial slice byte-identical. Returns the number of samples
        actually fed. A quarantined device replays nothing.
        """
        self._check_open()
        if device_id in self._quarantined:
            return 0
        start = int(start)
        Xc = np.asarray(Xc)
        yc = np.asarray(yc)
        session = self._touch(device_id)
        position = session.position
        if position >= start + len(Xc):
            return 0  # checkpoint already covers this journal entry
        if position < start:
            # A gap would silently break byte-identity; bench the device
            # loudly instead of feeding it a stream with a hole.
            self.quarantine(
                device_id,
                f"replay gap: session at {position}, journal resumes at {start}",
            )
            return 0
        offset = position - start
        self.submit(device_id, Xc[offset:], yc[offset:])
        return len(Xc) - offset

    def shed(self, k: int) -> int:
        """Evict up to ``k`` coldest resident sessions (load shedding).

        The fleet ladder calls this when respawn churn or queue depth
        says memory/CPU must be given back; evicted sessions restore
        lazily as usual, so nothing is lost — only latency. Returns the
        number of sessions shed.
        """
        self._check_open()
        n = 0
        while self._resident and n < int(k):
            self._evict_coldest()
            n += 1
        self.stats.shed_sessions += n
        tel = self.telemetry
        if tel.enabled and n:
            tel.counter(
                "fleet.shed_sessions", "sessions evicted by ladder load shedding"
            ).inc(n)
        return n

    def close(self) -> None:
        """Abort any still-open sessions and drop all state. Idempotent."""
        if self._closed:
            return
        self._closed = True
        for session in self._resident.values():
            session.abort()
        self._resident.clear()
        self._evicted.clear()

    def __enter__(self) -> "FleetManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- LRU / spool internals -------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("FleetManager is closed.")

    def _touch(self, device_id: str) -> StreamSession:
        """Return a live session for ``device_id``, making room if needed."""
        session = self._resident.get(device_id)
        if session is not None:
            self._resident.move_to_end(device_id)
            return session
        if device_id in self._finished:
            raise ConfigurationError(f"device {device_id!r} is already finished.")
        spec = self._specs.get(device_id)
        if spec is None:
            raise ConfigurationError(f"unknown device {device_id!r}.")
        while len(self._resident) >= self.capacity:
            self._evict_coldest()
        if device_id in self._evicted:
            session = self._restore(device_id, spec)
        else:
            session = self._build(device_id, spec)
        self._resident[device_id] = session
        self.stats.max_resident = max(self.stats.max_resident, len(self._resident))
        self._set_resident_gauge()
        return session

    def _stack(self, spec: ExperimentSpec, pipeline, device_id: str) -> list:
        chunk = spec.chunk_size if spec.chunk_size is not None else self.chunk_size
        if chunk is None:
            chunk = pipeline.default_chunk_size
        return [
            TelemetryInterceptor(pipeline.telemetry, device=device_id),
            GuardInterceptor(),
            ChunkScheduler(int(chunk)),
        ]

    def _build(self, device_id: str, spec: ExperimentSpec) -> StreamSession:
        from ..engine.spec import build_experiment

        exp = build_experiment(spec)
        self.stats.builds += 1
        return StreamSession(
            exp.pipeline, self._stack(spec, exp.pipeline, device_id)
        ).open()

    def _spool_path(self, device_id: str) -> Path:
        if self.spool_dir is None:
            raise ConfigurationError(
                "FleetManager needs a spool_dir to evict sessions; either pass "
                "one or raise capacity above the number of active devices."
            )
        return self.spool_dir / f"{device_id}.fleetck"

    def _spool_session(self, device_id: str, session: StreamSession) -> Path:
        """Write ``session``'s full state to the device's spool file."""
        from ..resilience import encode_records, save_checkpoint

        pipeline = session.pipeline
        guard = pipeline.guard
        state = {
            "position": session.position,
            "pipeline": pipeline.get_state(),
            "guard": None if guard is None else guard.get_state(),
            "records": encode_records(session.records),
        }
        path = self._spool_path(device_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Spool files are a cache of live state, not crash-recovery
        # artifacts — skip the fsync; a power cut loses the fleet run
        # anyway.
        save_checkpoint(
            path,
            state,
            kind=SESSION_KIND,
            meta={"device": device_id, "pipeline": type(pipeline).__name__},
            durable=False,
        )
        return path

    def _evict_coldest(self) -> None:
        device_id, session = self._resident.popitem(last=False)
        t0 = time.perf_counter()
        path = self._spool_session(device_id, session)
        session.close()
        self._evicted[device_id] = path
        self.stats.evictions += 1
        self.stats.evict_seconds += time.perf_counter() - t0
        tel = self.telemetry
        if tel.enabled:
            tel.counter("fleet.evictions", "sessions evicted to spool").inc()

    def _restore(self, device_id: str, spec: ExperimentSpec) -> StreamSession:
        from ..engine.spec import build_experiment
        from ..resilience import decode_records, load_checkpoint

        t0 = time.perf_counter()
        path = self._evicted.pop(device_id)
        try:
            ck = load_checkpoint(path, expected_kind=SESSION_KIND)
        except CheckpointError as exc:
            # Mirror ParallelRunner's corrupt-checkpoint policy: a damaged
            # spool file costs that one device, never the manager. Count
            # it, emit the structured event, bench the device, and keep
            # serving everything else.
            self.stats.corrupt_checkpoints += 1
            tel = self.telemetry
            if tel.enabled:
                tel.counter(
                    "fleet.checkpoint.corrupt",
                    "fleet-session spool loads refused as corrupt",
                ).inc()
                tel.emit(
                    "fleet_checkpoint_corrupt",
                    device=device_id,
                    path=str(path),
                    reason=f"{type(exc).__name__}: {exc}",
                )
            self.quarantine(
                device_id, f"corrupt spool checkpoint ({type(exc).__name__})"
            )
            raise DeviceQuarantinedError(
                device_id, f"corrupt spool checkpoint ({type(exc).__name__})"
            ) from exc
        if ck.meta.get("device") != device_id:
            raise ConfigurationError(
                f"spool file {path} belongs to device {ck.meta.get('device')!r}, "
                f"not {device_id!r}."
            )
        # Rebuilding from the spec is deterministic (same seeds -> same
        # model shape), so set_state lands on an identical skeleton.
        exp = build_experiment(spec)
        exp.pipeline.set_state(ck.state["pipeline"])
        if ck.state["guard"] is not None:
            if exp.pipeline.guard is None:
                raise ConfigurationError(
                    f"device {device_id!r} was evicted with guard state but its "
                    "spec builds no guard."
                )
            exp.pipeline.guard.set_state(ck.state["guard"])
        records = decode_records(ck.state["records"])
        session = StreamSession(
            exp.pipeline,
            self._stack(spec, exp.pipeline, device_id),
            start=int(ck.state["position"]),
            records=records,
        ).open()
        self.stats.restores += 1
        self.stats.restore_seconds += time.perf_counter() - t0
        tel = self.telemetry
        if tel.enabled:
            tel.counter("fleet.restores", "sessions restored from spool").inc()
        return session

    def _set_resident_gauge(self) -> None:
        tel = self.telemetry
        if tel.enabled:
            tel.gauge("fleet.resident_sessions", "live sessions in memory").set(
                len(self._resident)
            )
