"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything from this package with a single ``except`` clause while still
being able to distinguish configuration mistakes from lifecycle mistakes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NotFittedError",
    "ConfigurationError",
    "DataValidationError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class NotFittedError(ReproError, RuntimeError):
    """An estimator method was called before the estimator was fitted.

    Raised by ``predict``/``score``/``update``-style methods on models and
    detectors whose ``fit`` (or initial-training) phase has not run yet.
    """

    def __init__(self, obj: object, method: str = "this method") -> None:
        name = type(obj).__name__ if not isinstance(obj, str) else obj
        super().__init__(
            f"{name} is not fitted yet; call 'fit' before using {method}."
        )


class ConfigurationError(ReproError, ValueError):
    """A hyper-parameter or combination of hyper-parameters is invalid."""


class DataValidationError(ReproError, ValueError):
    """Input data has the wrong shape, dtype, or contains invalid values."""
