"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything from this package with a single ``except`` clause while still
being able to distinguish configuration mistakes from lifecycle mistakes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NotFittedError",
    "ConfigurationError",
    "DataValidationError",
    "GuardError",
    "NumericalHealthError",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointVersionError",
    "DeviceQuarantinedError",
    "FleetOverloadError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class NotFittedError(ReproError, RuntimeError):
    """An estimator method was called before the estimator was fitted.

    Raised by ``predict``/``score``/``update``-style methods on models and
    detectors whose ``fit`` (or initial-training) phase has not run yet.
    """

    def __init__(self, obj: object, method: str = "this method") -> None:
        name = type(obj).__name__ if not isinstance(obj, str) else obj
        super().__init__(
            f"{name} is not fitted yet; call 'fit' before using {method}."
        )


class ConfigurationError(ReproError, ValueError):
    """A hyper-parameter or combination of hyper-parameters is invalid."""


class DataValidationError(ReproError, ValueError):
    """Input data has the wrong shape, dtype, or contains invalid values."""


class GuardError(ReproError, RuntimeError):
    """The runtime guard refused to continue a stream.

    Raised by :mod:`repro.guard` under the ``reject`` sanitizer policy
    when an input sample is non-finite or out of the learned bounds —
    the loud-failure counterpart of the repairing policies (``clip``,
    ``impute_last_good``, ``quarantine``), which never raise.
    """


class NumericalHealthError(GuardError):
    """A numeric-health sentinel found diverged model state.

    Raised by :meth:`repro.oselm.oselm.OSELM.check_health` (and by the
    guard layer in strict configurations) when the RLS state carries
    non-finite values, an exploded ``β`` norm, a blown-up or asymmetric
    ``P`` matrix, or a non-positive-definite diagonal.
    """


class CheckpointError(ReproError):
    """Base class for checkpoint persistence errors."""


class CheckpointCorruptError(CheckpointError, ValueError):
    """A checkpoint file is damaged and was refused.

    Raised for bad magic, checksum mismatches (truncation, bit flips),
    undecodable headers, and malformed payloads. Loading never returns
    partial state: the error is raised before any state object is built,
    so the caller's in-memory state is untouched.
    """


class CheckpointVersionError(CheckpointCorruptError):
    """An intact checkpoint was written with an incompatible format version."""


class DeviceQuarantinedError(ReproError, RuntimeError):
    """A fleet device was quarantined and no longer accepts samples.

    Raised by :class:`repro.fleet.FleetManager` when a submit targets a
    device that was benched — because its spool checkpoint was corrupt,
    or because its feeds repeatedly failed (or killed) its shard. The
    rest of the fleet keeps serving; the quarantine is surfaced as a
    structured ``fleet.device.quarantined`` telemetry event.
    """

    def __init__(self, device_id: str, reason: str = "quarantined") -> None:
        self.device_id = str(device_id)
        self.reason = str(reason)
        super().__init__(f"device {device_id!r} is quarantined: {reason}")


class FleetOverloadError(ReproError, RuntimeError):
    """The fleet supervisor is shedding load and rejected a submission.

    Raised while the fleet-level degradation ladder sits at
    ``PASSTHROUGH`` or above (respawn churn or queue depth crossed its
    thresholds). Transient under ``PASSTHROUGH`` — the ladder steps back
    down after a clean streak; sticky under ``FROZEN``.
    """
