"""Input-validation helpers shared across the library.

These helpers normalise user input into contiguous ``float64`` NumPy arrays
and raise :class:`~repro.utils.exceptions.DataValidationError` (for data
problems) or :class:`~repro.utils.exceptions.ConfigurationError` (for
hyper-parameter problems) with consistent, actionable messages.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .exceptions import ConfigurationError, DataValidationError

__all__ = [
    "as_matrix",
    "as_vector",
    "check_consistent_length",
    "check_positive",
    "check_in_range",
    "check_probability",
    "check_labels",
    "validate_checkpoint_config",
]


def _coerce(X: object, dtype: type, name: str) -> np.ndarray:
    """``np.asarray`` that reports uncastable input as a data problem.

    Object arrays of strings (a sensor stream gone textual, a CSV column
    parsed wrong) make ``np.asarray`` raise a bare ``ValueError``; wrap it
    so callers see the library's :class:`DataValidationError` instead.
    """
    try:
        return np.asarray(X, dtype=dtype)
    except (ValueError, TypeError) as exc:
        raise DataValidationError(
            f"{name} could not be coerced to {np.dtype(dtype).name}: {exc}"
        ) from exc


def as_matrix(
    X: object,
    *,
    name: str = "X",
    n_features: Optional[int] = None,
    allow_empty: bool = False,
    dtype: type = np.float64,
    ensure_finite: bool = True,
) -> np.ndarray:
    """Coerce ``X`` to a 2-D ``(n_samples, n_features)`` float array.

    A 1-D input is interpreted as a single sample (one row). Non-finite
    values are rejected: on a microcontroller a NaN propagating through a
    sequential update silently corrupts the model state forever, so the
    library refuses them at the boundary. ``ensure_finite=False`` lifts
    only that check — it exists for the fault-injection and
    :mod:`repro.guard` layers, which deliberately carry sensor garbage up
    to the sanitizer instead of dying at the edge of the library.
    """
    arr = _coerce(X, dtype, name)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise DataValidationError(
            f"{name} must be 1-D or 2-D, got {arr.ndim}-D with shape {arr.shape}."
        )
    if not allow_empty and arr.shape[0] == 0:
        raise DataValidationError(f"{name} must contain at least one sample.")
    if arr.shape[1] == 0:
        raise DataValidationError(f"{name} must have at least one feature.")
    if n_features is not None and arr.shape[1] != n_features:
        raise DataValidationError(
            f"{name} has {arr.shape[1]} features, expected {n_features}."
        )
    if ensure_finite and not np.all(np.isfinite(arr)):
        raise DataValidationError(f"{name} contains NaN or infinite values.")
    return np.ascontiguousarray(arr)


def as_vector(
    x: object,
    *,
    name: str = "x",
    n_features: Optional[int] = None,
    dtype: type = np.float64,
    ensure_finite: bool = True,
) -> np.ndarray:
    """Coerce ``x`` to a 1-D float vector (a single sample)."""
    arr = _coerce(x, dtype, name)
    if arr.ndim == 2 and arr.shape[0] == 1:
        arr = arr[0]
    if arr.ndim != 1:
        raise DataValidationError(
            f"{name} must be a single sample (1-D), got shape {arr.shape}."
        )
    if arr.shape[0] == 0:
        raise DataValidationError(f"{name} must have at least one feature.")
    if n_features is not None and arr.shape[0] != n_features:
        raise DataValidationError(
            f"{name} has {arr.shape[0]} features, expected {n_features}."
        )
    if ensure_finite and not np.all(np.isfinite(arr)):
        raise DataValidationError(f"{name} contains NaN or infinite values.")
    return np.ascontiguousarray(arr)


def check_consistent_length(**named_arrays: Sequence) -> None:
    """Raise if the named arrays do not all share the same first dimension."""
    lengths = {name: len(a) for name, a in named_arrays.items()}
    if len(set(lengths.values())) > 1:
        detail = ", ".join(f"{k}={v}" for k, v in lengths.items())
        raise DataValidationError(f"Inconsistent sample counts: {detail}.")


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that a scalar hyper-parameter is (strictly) positive."""
    if strict and not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}.")
    if not strict and not value >= 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}.")
    return value


def check_in_range(
    value: float,
    name: str,
    *,
    low: float = -np.inf,
    high: float = np.inf,
    inclusive: bool = True,
) -> float:
    """Validate that ``low (<|<=) value (<|<=) high``."""
    ok = low <= value <= high if inclusive else low < value < high
    if not ok:
        brackets = "[]" if inclusive else "()"
        raise ConfigurationError(
            f"{name} must be in {brackets[0]}{low}, {high}{brackets[1]}, got {value!r}."
        )
    return value


def check_probability(value: float, name: str) -> float:
    """Validate a probability-like parameter in ``[0, 1]``."""
    return check_in_range(value, name, low=0.0, high=1.0)


def validate_checkpoint_config(
    checkpoint_every: Optional[int],
    checkpoint_path: Optional[Union[str, Path]],
    *,
    allow_default_every: bool = False,
) -> Tuple[Optional[int], Optional[Path]]:
    """Validate the ``checkpoint_every`` / ``checkpoint_path`` pairing.

    The two options only make sense together: a cadence without a
    destination cannot persist anything, and a destination without a
    cadence has nothing to write (unless the caller supplies a default
    cadence itself — ``allow_default_every=True``, the CLI's mode, where
    a path alone is accepted and ``(None, path)`` is returned).

    Returns the normalized ``(every, path)`` pair — ``(None, None)`` when
    checkpointing is disabled — and raises
    :class:`~repro.utils.exceptions.ConfigurationError` for a dangling
    half of the pair or a non-positive cadence.
    """
    if checkpoint_path is None:
        if checkpoint_every is not None:
            raise ConfigurationError(
                "checkpoint_every and checkpoint_path must be given together."
            )
        return None, None
    if checkpoint_every is None:
        if not allow_default_every:
            raise ConfigurationError(
                "checkpoint_every and checkpoint_path must be given together."
            )
        return None, Path(checkpoint_path)
    if int(checkpoint_every) < 1:
        raise ConfigurationError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}."
        )
    return int(checkpoint_every), Path(checkpoint_path)


def check_labels(y: object, *, n_classes: Optional[int] = None, name: str = "y") -> np.ndarray:
    """Coerce labels to a 1-D int array of class indices ``0..C-1``."""
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise DataValidationError(f"{name} must be 1-D, got shape {arr.shape}.")
    if not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == np.floor(arr)):
            arr = arr.astype(np.int64)
        else:
            raise DataValidationError(f"{name} must contain integer class indices.")
    arr = arr.astype(np.int64)
    if arr.size and arr.min() < 0:
        raise DataValidationError(f"{name} contains negative class indices.")
    if n_classes is not None and arr.size and arr.max() >= n_classes:
        raise DataValidationError(
            f"{name} contains label {arr.max()} but only {n_classes} classes exist."
        )
    return arr
