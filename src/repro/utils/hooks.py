"""Late-bound access to optional service layers.

:mod:`repro.core` must stay importable (and analysable) without the
telemetry subsystem — the layering check in ``tools/check_layering.py``
enforces that ``repro.core`` never imports :mod:`repro.telemetry`,
:mod:`repro.guard`, or :mod:`repro.resilience`. Pipelines still need a
telemetry hub to attach to, so this module provides the one sanctioned
indirection: a function-level import resolved at call time.
"""

from __future__ import annotations

__all__ = ["default_telemetry"]


def default_telemetry():
    """The process-wide telemetry hub (see :func:`repro.telemetry.get_telemetry`).

    Imported lazily so that modules below the telemetry layer can obtain
    the hub without a module-level dependency on it.
    """
    from ..telemetry import get_telemetry

    return get_telemetry()
