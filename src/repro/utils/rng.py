"""Seedable random-number-generator plumbing.

Every stochastic component in :mod:`repro` accepts a ``seed`` argument that
may be ``None``, an integer, or an existing :class:`numpy.random.Generator`.
Funnelling all of them through :func:`ensure_rng` guarantees that

* experiments are bit-reproducible given a seed,
* components can share a generator (pass the ``Generator`` itself), and
* nothing in the library ever touches NumPy's legacy global RNG state.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "SeedLike",
    "ensure_rng",
    "spawn_rngs",
    "get_generator_state",
    "set_generator_state",
]

#: Anything accepted as a seed by the library.
SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int``, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so state is shared).

    Examples
    --------
    >>> g1 = ensure_rng(42)
    >>> g2 = ensure_rng(42)
    >>> float(g1.random()) == float(g2.random())
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent child generators.

    Used by multi-instance models (one OS-ELM per label) so that each
    instance gets its own independent random hidden layer while the whole
    ensemble stays reproducible from one seed.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=n, dtype=np.int64)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def get_generator_state(gen: np.random.Generator) -> dict:
    """Snapshot a generator's bit-generator state as a plain nested dict.

    The returned structure contains only builtins (ints, strings, dicts),
    so it survives a JSON round-trip — which is exactly what the
    checkpoint layer needs to resume RNG-consuming components
    (QuantTree, SPLL, KSWIN) bit-identically.
    """
    import copy

    return copy.deepcopy(gen.bit_generator.state)


def set_generator_state(gen: np.random.Generator, state: dict) -> None:
    """Restore a generator snapshot taken by :func:`get_generator_state`.

    Mutates ``gen`` in place so components sharing the generator object
    keep sharing it after a restore.
    """
    import copy

    gen.bit_generator.state = copy.deepcopy(state)
