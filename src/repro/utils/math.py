"""Numerically careful math helpers used across the library.

These are small, heavily-reused primitives: pairwise distances for the
clustering substrate, a streaming mean/variance estimator for threshold
calibration and error-rate detectors, and log-domain utilities for the GMM.
All array paths are fully vectorised (see the HPC guide: vectorise inner
loops, prefer in-place updates, avoid needless copies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "pairwise_sq_dists",
    "pairwise_l1_dists",
    "logsumexp",
    "sigmoid",
    "RunningMoments",
]


def pairwise_sq_dists(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of ``A`` and rows of ``B``.

    Returns an ``(len(A), len(B))`` matrix. Uses the expanded form
    ``|a|^2 - 2 a.b + |b|^2`` (one GEMM instead of a broadcasted cube of
    memory), clipping tiny negative round-off to zero.
    """
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    aa = np.einsum("ij,ij->i", A, A)[:, None]
    bb = np.einsum("ij,ij->i", B, B)[None, :]
    d = aa + bb - 2.0 * (A @ B.T)
    np.maximum(d, 0.0, out=d)
    return d


def pairwise_l1_dists(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Manhattan (L1) distances between rows of ``A`` and rows of ``B``.

    The paper's drift rate (Algorithm 1, line 14) and its coordinate
    bookkeeping (Algorithms 3-4) use L1 distances, which are cheap on
    FPU-less microcontrollers (no multiplies).
    """
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    return np.abs(A[:, None, :] - B[None, :, :]).sum(axis=2)


def logsumexp(a: np.ndarray, axis: int | None = None) -> np.ndarray:
    """Stable ``log(sum(exp(a)))`` along ``axis``."""
    a = np.asarray(a, dtype=np.float64)
    amax = np.max(a, axis=axis, keepdims=True)
    amax = np.where(np.isfinite(amax), amax, 0.0)
    out = np.log(np.sum(np.exp(a - amax), axis=axis, keepdims=True)) + amax
    return out if axis is None else np.squeeze(out, axis=axis)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid (no overflow warnings)."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


@dataclass
class RunningMoments:
    """Streaming mean/variance via Welford's algorithm.

    O(1) memory per stream — the same budget discipline as the paper's
    sequential detector. Used for Eq. 1 threshold calibration and by the
    Page-Hinkley / DDM error-rate detectors.

    Examples
    --------
    >>> m = RunningMoments()
    >>> for v in [1.0, 2.0, 3.0]:
    ...     m.update(v)
    >>> m.mean
    2.0
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def update(self, value: float) -> None:
        """Fold one observation into the running moments."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def update_many(self, values: np.ndarray) -> None:
        """Fold a batch of observations (still numerically stable)."""
        for v in np.asarray(values, dtype=np.float64).ravel():
            self.update(float(v))

    @property
    def variance(self) -> float:
        """Population variance (the paper's Eq. 1 uses the 1/N form)."""
        return self._m2 / self.count if self.count > 0 else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return float(np.sqrt(self.variance))

    def reset(self) -> None:
        """Forget all observations."""
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def get_state(self) -> dict:
        """Snapshot the running moments as plain builtins."""
        return {"count": int(self.count), "mean": float(self.mean), "m2": float(self._m2)}

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self.count = int(state["count"])
        self.mean = float(state["mean"])
        self._m2 = float(state["m2"])
