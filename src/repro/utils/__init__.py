"""Shared substrate: exceptions, RNG plumbing, validation, math helpers."""

from .exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
    ReproError,
)
from .math import (
    RunningMoments,
    logsumexp,
    pairwise_l1_dists,
    pairwise_sq_dists,
    sigmoid,
)
from .hooks import default_telemetry
from .rng import SeedLike, ensure_rng, spawn_rngs
from .validation import (
    as_matrix,
    as_vector,
    check_consistent_length,
    check_in_range,
    check_labels,
    check_positive,
    check_probability,
    validate_checkpoint_config,
)

__all__ = [
    "ReproError",
    "NotFittedError",
    "ConfigurationError",
    "DataValidationError",
    "RunningMoments",
    "logsumexp",
    "pairwise_l1_dists",
    "pairwise_sq_dists",
    "sigmoid",
    "SeedLike",
    "ensure_rng",
    "spawn_rngs",
    "as_matrix",
    "as_vector",
    "check_consistent_length",
    "check_in_range",
    "check_labels",
    "check_positive",
    "check_probability",
    "validate_checkpoint_config",
    "default_telemetry",
]
