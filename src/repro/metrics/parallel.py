"""Parallel experiment grid runner — (method × stream × seed) at scale.

The paper's tables are grids: every method configuration replayed over
every stream for one or more seeds. :func:`~repro.metrics.runner.compare_methods`
runs such a grid serially in-process; this module fans the cells across a
:class:`concurrent.futures.ProcessPoolExecutor` instead, with

* **declarative cells** — each cell is an
  :class:`~repro.engine.spec.ExperimentSpec` naming a registered
  pipeline builder and dataset factory (see :mod:`repro.engine.registry`)
  plus their kwargs — specs are picklable and JSON-canonical, so any
  cell can be shipped to a worker or hashed;
* **per-cell seeding** — the spec's ``seed`` goes to the pipeline builder
  (unless ``model_seed`` overrides it) and to the stream factory unless
  its kwargs pin one, so results are a pure function of the spec and
  identical for any ``max_workers``;
* **timeout/retry** — a cell that raises, times out, or loses its worker
  process is retried on a fresh pool up to ``retries`` times;
* **an on-disk JSON result cache** keyed by
  :meth:`~repro.engine.spec.ExperimentSpec.config_hash` — re-running a
  grid only computes the cells that changed, and any cell is
  reproducible from its serialized spec alone.

Results come back as :class:`CellResult` — a JSON round-trippable summary
(accuracy, delays, phase tally, memory, wall-clock) that can optionally
carry the full per-sample records and rebuild a
:class:`~repro.metrics.runner.MethodResult` for downstream tooling.

:func:`CellSpec` remains as a constructor accepting the legacy
``method=``/``stream=`` vocabulary; it returns an ``ExperimentSpec``.

Example
-------
>>> runner = ParallelRunner(cache_dir="results/", max_workers=4)
>>> cells = make_grid(
...     methods={"Proposed (W=100)": ("proposed", {"window_size": 100}),
...              "Baseline": ("baseline", {})},
...     streams={"nslkdd": ("nslkdd", {"seed": 0})},
...     seeds=[1, 2, 3],
... )
>>> results = runner.run(cells)   # doctest: +SKIP
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from multiprocessing import connection as mp_connection
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.pipeline import StepRecord
from ..device.timing import PhaseTally
from ..engine.registry import DATASET_FACTORIES, PIPELINE_BUILDERS
from ..engine.spec import (
    SPEC_VERSION,
    ExperimentSpec,
    build_experiment,
    canonical_json,
    spec_hash,
)
from ..resilience.reclog import remove_run_checkpoint
from ..telemetry import Telemetry, get_telemetry
from ..utils.exceptions import ConfigurationError
from .delay import delay_report
from .runner import MethodResult, evaluate_method

__all__ = [
    "CellSpec",
    "CellResult",
    "ParallelRunner",
    "ParallelExecutionError",
    "ShardPool",
    "ShardError",
    "make_grid",
    "run_cell",
    "METHOD_BUILDERS",
    "STREAM_FACTORIES",
]

#: Cache-layout version — tracks the canonical spec layout (see
#: :data:`repro.engine.spec.SPEC_VERSION`); stale cache files are ignored.
_CACHE_VERSION = SPEC_VERSION

#: Legacy aliases — the *same live dicts* as the engine registries, so
#: ``monkeypatch.setitem(METHOD_BUILDERS, ...)`` is seen by resolution.
METHOD_BUILDERS = PIPELINE_BUILDERS
STREAM_FACTORIES = DATASET_FACTORIES


def _package_version() -> str:
    """The installed ``repro.__version__`` (imported lazily: the package
    ``__init__`` defines it *after* importing this module)."""
    from .. import __version__

    return __version__


class ParallelExecutionError(RuntimeError):
    """A grid cell kept failing after all retries."""


# --------------------------------------------------------------------------
# Cell specification and result
# --------------------------------------------------------------------------

def CellSpec(
    name: str,
    method: Optional[str] = None,
    stream: Optional[str] = None,
    seed: int = 0,
    method_kwargs: Optional[Mapping[str, Any]] = None,
    stream_kwargs: Optional[Mapping[str, Any]] = None,
    n_test: Optional[int] = None,
    chunk_size: Optional[int] = None,
    **spec_kwargs,
) -> ExperimentSpec:
    """Legacy constructor: ``method``/``stream`` vocabulary → :class:`ExperimentSpec`.

    Kept so existing call sites (and muscle memory) keep working; new
    code should construct :class:`~repro.engine.spec.ExperimentSpec`
    directly with the ``pipeline``/``dataset`` field names.
    """
    if method is None or stream is None:
        raise ConfigurationError("CellSpec needs both method= and stream=.")
    return ExperimentSpec(
        name=name,
        pipeline=method,
        dataset=stream,
        seed=int(seed),
        pipeline_kwargs=dict(method_kwargs or {}),
        dataset_kwargs=dict(stream_kwargs or {}),
        n_test=n_test,
        chunk_size=chunk_size,
        **spec_kwargs,
    )


_RECORD_FIELDS = (
    "index", "predicted", "true_label", "correct",
    "anomaly_score", "drift_detected", "reconstructing", "phase",
)


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars to builtins; JSON floats round-trip exactly."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _records_to_columns(records: Sequence[StepRecord]) -> Dict[str, list]:
    return {f: [_jsonable(getattr(r, f)) for r in records] for f in _RECORD_FIELDS}


def _columns_to_records(cols: Mapping[str, list]) -> List[StepRecord]:
    return [StepRecord(*vals) for vals in zip(*(cols[f] for f in _RECORD_FIELDS))]


@dataclass
class CellResult:
    """JSON round-trippable outcome of one grid cell."""

    name: str
    spec: dict
    accuracy: float
    delays: List[Optional[int]]
    false_positives: List[int]
    detections: List[int]
    drift_points: List[int]
    phase_counts: Dict[str, int]
    wall_seconds: float
    detector_nbytes: int
    n_records: int
    records: Optional[Dict[str, list]] = None
    from_cache: bool = False
    attempts: int = 1
    #: stream position this cell resumed from (None = ran start to finish)
    resumed_at: Optional[int] = None
    #: worker-hub telemetry delta (``TelemetrySnapshot.to_json()``) captured
    #: around this cell's run; merged into the parent hub, never cached.
    telemetry: Optional[dict] = None

    @property
    def first_delay(self) -> Optional[int]:
        return self.delays[0] if self.delays else None

    def to_json(self) -> dict:
        out = dict(self.__dict__)
        out.pop("from_cache")
        out.pop("telemetry")
        return out

    @classmethod
    def from_json(cls, data: Mapping[str, Any], *, from_cache: bool = False) -> "CellResult":
        return cls(**{**data, "from_cache": from_cache})

    def to_method_result(self) -> MethodResult:
        """Rebuild a full :class:`MethodResult` (needs stored records)."""
        if self.records is None:
            raise ConfigurationError(
                f"cell {self.name!r} was run without keep_records=True; "
                "per-sample records are not available."
            )
        records = _columns_to_records(self.records)
        return MethodResult(
            name=self.name,
            records=records,
            accuracy=self.accuracy,
            delay=delay_report(records, self.drift_points),
            phase_tally=PhaseTally.from_records(records),
            wall_seconds=self.wall_seconds,
            detector_nbytes=self.detector_nbytes,
        )


# --------------------------------------------------------------------------
# Worker entry point (module-level: must be picklable for the process pool)
# --------------------------------------------------------------------------

def run_cell(
    spec: ExperimentSpec,
    *,
    keep_records: bool = False,
    checkpoint_path: Optional[str | os.PathLike] = None,
    checkpoint_every: Optional[int] = None,
) -> CellResult:
    """Execute one grid cell in the current process.

    Deterministic in the spec alone: :func:`~repro.engine.spec.build_experiment`
    derives every RNG from the spec's seeds, so this returns identical
    numbers whether it runs inline, in any worker process, or on another
    host.

    With ``checkpoint_path`` the cell is crash-safe: the pipeline state is
    checkpointed every ``checkpoint_every`` samples, a retry after a crash
    resumes from the last checkpoint (numbers identical to an unbroken
    run), and the file is removed once the cell completes. A corrupt
    checkpoint is discarded and the cell restarts from sample 0.
    """
    experiment = build_experiment(spec)
    result = evaluate_method(
        experiment.pipeline,
        experiment.test,
        name=spec.name,
        chunk_size=spec.chunk_size,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
    )
    if checkpoint_path is not None:
        # The cell finished: its checkpoint is spent (a later re-run must
        # not "resume" past the end of a completed stream).
        remove_run_checkpoint(checkpoint_path)
    return CellResult(
        name=spec.name,
        spec=spec.canonical(),
        accuracy=float(result.accuracy),
        delays=list(result.delay.delays),
        false_positives=list(result.delay.false_positives),
        detections=list(result.delay.detections),
        drift_points=list(experiment.test.drift_points),
        phase_counts=dict(result.phase_tally.counts),
        wall_seconds=float(result.wall_seconds),
        detector_nbytes=int(result.detector_nbytes),
        n_records=len(result.records),
        records=_records_to_columns(result.records) if keep_records else None,
        resumed_at=result.resumed_at,
    )


def _run_cell_job(
    args: Tuple[ExperimentSpec, bool, Optional[str], Optional[int], bool],
) -> CellResult:
    spec, keep_records, checkpoint_path, checkpoint_every, collect_telemetry = args
    tel = get_telemetry()
    was_enabled = tel.enabled
    if collect_telemetry:
        # The parent hub is live: enable this worker's hub for the cell and
        # reset the delta baseline so a reused pool process ships only what
        # *this* cell recorded.
        tel.enabled = True
        tel.snapshot_delta()
    try:
        result = run_cell(
            spec,
            keep_records=keep_records,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )
        if collect_telemetry:
            delta = tel.snapshot_delta()
            if not delta.is_empty():
                result.telemetry = delta.to_json()
        return result
    finally:
        tel.enabled = was_enabled


# --------------------------------------------------------------------------
# The runner
# --------------------------------------------------------------------------

class ParallelRunner:
    """Fan a list of :class:`ExperimentSpec` over worker processes, with caching.

    Parameters
    ----------
    cache_dir:
        Directory for per-cell JSON results (created on demand). ``None``
        disables caching. Cache keys are the specs' ``config_hash()``.
    max_workers:
        Pool width. ``0`` or ``1`` runs cells inline in this process (no
        pool) — handy for debugging and exact single-process semantics;
        ``None`` uses ``os.cpu_count()``.
    timeout:
        Per-cell wall-clock limit in seconds (``None`` = unlimited). A
        timed-out cell counts as a failure and is retried.
    retries:
        How many *extra* attempts a failing cell gets (on a fresh pool)
        before :class:`ParallelExecutionError` is raised.
    keep_records:
        Store per-sample records in results (and in the cache) so
        :meth:`CellResult.to_method_result` can rebuild full results.
    checkpoint_dir:
        Directory for per-cell crash-recovery checkpoints (created on
        demand; keyed by the spec hash like the cache). When set, a cell
        that dies mid-stream resumes from its last checkpoint on retry
        instead of starting over, with identical final numbers; the
        checkpoint is deleted once the cell completes. ``None`` disables
        crash recovery.
    checkpoint_every:
        Checkpoint cadence in samples (used only with ``checkpoint_dir``).
    """

    def __init__(
        self,
        cache_dir: Optional[str | os.PathLike] = None,
        *,
        max_workers: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        keep_records: bool = False,
        checkpoint_dir: Optional[str | os.PathLike] = None,
        checkpoint_every: int = 256,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_workers = max_workers
        self.timeout = timeout
        self.retries = int(retries)
        self.keep_records = bool(keep_records)
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self.checkpoint_every = int(checkpoint_every)
        #: telemetry hub (the process default; reassign for private capture).
        #: Counters/events are recorded in the *parent* process only —
        #: worker processes have their own (disabled) default hubs.
        self.telemetry: Telemetry = get_telemetry()

    # -- cache ------------------------------------------------------------------

    def _cache_path(self, spec: ExperimentSpec) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{spec.config_hash()}.json"

    def _checkpoint_path(self, spec: ExperimentSpec) -> Optional[Path]:
        if self.checkpoint_dir is None:
            return None
        return self.checkpoint_dir / f"{spec.config_hash()}.ckpt"

    def _cache_load(self, spec: ExperimentSpec) -> Optional[CellResult]:
        path = self._cache_path(spec)
        if path is None or not path.is_file():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if data.pop("repro_version", None) != _package_version():
            # Written by a different library version: the algorithms may
            # have changed under the spec, so the entry is stale.
            return None
        # Compare JSON-normalised: the stored spec went through a JSON
        # round trip (tuples → lists), so a tuple-valued kwarg must not
        # read as a mismatch — and a genuine sha256-prefix collision or
        # stale layout still forces a recompute.
        if data.get("spec") != canonical_json(spec.canonical()):
            return None  # different spec behind the same hash — recompute
        if self.keep_records and data.get("records") is None:
            return None  # cached without records but records requested now
        data.setdefault("name", spec.name)
        result = CellResult.from_json(data, from_cache=True)
        result.name = spec.name  # display name may differ between runs
        return result

    def _cache_store(self, result: CellResult) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        # Same hash implementation as ExperimentSpec.config_hash — the
        # stored file must land exactly where _cache_path will look.
        path = self.cache_dir / f"{spec_hash(result.spec)}.json"
        tmp = path.with_suffix(".tmp")
        payload = result.to_json()
        payload["repro_version"] = _package_version()
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)  # atomic: parallel runners never see half files

    # -- execution --------------------------------------------------------------

    def run(self, cells: Sequence[ExperimentSpec]) -> List[CellResult]:
        """Run every cell; returns results aligned with the input order."""
        tel = self.telemetry
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        results: List[Optional[CellResult]] = [None] * len(cells)
        pending: List[int] = []
        for i, spec in enumerate(cells):
            cached = self._cache_load(spec)
            if cached is not None:
                results[i] = cached
                if tel.enabled:
                    tel.registry.counter(
                        "parallel.cache_hits", "grid cells served from cache"
                    ).inc()
                    tel.emit("cell_cache_hit", name=spec.name)
            else:
                pending.append(i)
                if tel.enabled and self.cache_dir is not None:
                    tel.registry.counter(
                        "parallel.cache_misses", "grid cells not found in cache"
                    ).inc()

        errors: Dict[int, str] = {}
        for attempt in range(1 + self.retries):
            if not pending:
                break
            if attempt and tel.enabled:
                tel.registry.counter(
                    "parallel.retry_waves", "extra attempts over failed cells"
                ).inc()
                tel.emit("retry_wave", attempt=attempt + 1, cells=len(pending))
            pending, errors = self._run_wave(cells, pending, results, attempt + 1)
        if pending:
            detail = "; ".join(
                f"{cells[i].name!r}: {errors.get(i, 'unknown error')}" for i in pending
            )
            raise ParallelExecutionError(
                f"{len(pending)} cell(s) failed after {1 + self.retries} attempt(s): {detail}"
            )
        return results  # type: ignore[return-value]

    def run_grid(
        self,
        methods: Mapping[str, Tuple[str, Mapping[str, Any]]],
        streams: Mapping[str, Tuple[str, Mapping[str, Any]]],
        seeds: Iterable[int],
        **cell_kwargs,
    ) -> Dict[Tuple[str, str, int], CellResult]:
        """Run the full cross product; returns ``(method, stream, seed) →`` result."""
        cells = make_grid(methods, streams, seeds, **cell_kwargs)
        keys = [
            (m, s, int(seed))
            for seed in seeds
            for s in streams
            for m in methods
        ]
        return dict(zip(keys, self.run(cells)))

    def _run_wave(
        self,
        cells: Sequence[ExperimentSpec],
        pending: List[int],
        results: List[Optional[CellResult]],
        attempt: int,
    ) -> Tuple[List[int], Dict[int, str]]:
        """One attempt over the still-missing cells; returns (failures, errors)."""
        tel = self.telemetry
        failures: List[int] = []
        errors: Dict[int, str] = {}

        def record(i: int, result: CellResult) -> None:
            result.attempts = attempt
            results[i] = result
            self._cache_store(result)
            if tel.enabled:
                if result.telemetry:
                    # Worker-hub metrics recorded while running this cell
                    # (counters sum, histograms add bucket-wise).
                    tel.merge(result.telemetry)
                tel.registry.counter(
                    "parallel.cells_run", "grid cells computed (not cached)"
                ).inc()
                if result.resumed_at is not None:
                    tel.registry.counter(
                        "parallel.resumes", "cells resumed from a crash checkpoint"
                    ).inc()
                    tel.emit(
                        "cell_resumed", name=result.name, position=result.resumed_at
                    )
                tel.emit(
                    "cell_finished",
                    name=result.name,
                    attempt=attempt,
                    wall_seconds=result.wall_seconds,
                )

        def failed(i: int, reason: str, *, timeout: bool = False) -> None:
            failures.append(i)
            errors[i] = reason
            if tel.enabled:
                tel.registry.counter(
                    "parallel.failures", "cell attempts that failed"
                ).inc()
                if timeout:
                    tel.registry.counter(
                        "parallel.timeouts", "cell attempts that timed out"
                    ).inc()
                tel.emit(
                    "cell_failed", name=cells[i].name, attempt=attempt, error=reason
                )

        workers = os.cpu_count() or 1 if self.max_workers is None else self.max_workers
        if workers <= 1:
            # Inline mode: exact single-process semantics, no pool. Timeouts
            # need a worker process to enforce, so they do not apply here.
            for i in pending:
                tel.emit("cell_started", name=cells[i].name, attempt=attempt)
                try:
                    ckpt = self._checkpoint_path(cells[i])
                    record(
                        i,
                        run_cell(
                            cells[i],
                            keep_records=self.keep_records,
                            checkpoint_path=ckpt,
                            checkpoint_every=(
                                self.checkpoint_every if ckpt is not None else None
                            ),
                        ),
                    )
                except Exception as exc:  # noqa: BLE001 — isolate per cell
                    failed(i, f"{type(exc).__name__}: {exc}")
            return failures, errors

        executor = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = {
                i: executor.submit(
                    _run_cell_job,
                    (
                        cells[i],
                        self.keep_records,
                        (
                            str(self._checkpoint_path(cells[i]))
                            if self.checkpoint_dir is not None
                            else None
                        ),
                        (
                            self.checkpoint_every
                            if self.checkpoint_dir is not None
                            else None
                        ),
                        tel.enabled,
                    ),
                )
                for i in pending
            }
            for i in pending:
                tel.emit("cell_started", name=cells[i].name, attempt=attempt)
            broken = False
            for i, fut in futures.items():
                if broken:
                    failures.append(i)
                    errors.setdefault(i, "process pool broke earlier this wave")
                    continue
                try:
                    record(i, fut.result(timeout=self.timeout))
                except FutureTimeout:
                    failed(i, f"timed out after {self.timeout}s", timeout=True)
                except Exception as exc:  # noqa: BLE001 — worker died or raised
                    failed(i, f"{type(exc).__name__}: {exc}")
                    if type(exc).__name__ == "BrokenProcessPool":
                        broken = True
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return failures, errors


# --------------------------------------------------------------------------
# Long-lived shards — the stateful counterpart of the one-shot wave pool
# --------------------------------------------------------------------------


class ShardError(RuntimeError):
    """A shard worker raised (or died) while serving a request.

    Carries ``ticket`` (the request it belongs to, when known) and
    ``shard`` (the worker it came from, when known) so multi-ticket
    collectors — :meth:`ShardPool.collect_any` callers — can attribute a
    failure without parsing the message.
    """

    def __init__(
        self,
        message: str,
        *,
        ticket: Optional[int] = None,
        shard: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.ticket = ticket
        self.shard = shard


class ShardDiedError(ShardError):
    """The shard's worker process is gone (pipe broken or EOF).

    Distinct from a request-level :class:`ShardError` (worker alive, the
    request raised) so supervisors can dispatch on the exception type
    instead of racing ``Process.is_alive`` against SIGKILL delivery.
    """


class ShardTimeoutError(ShardError):
    """A shard worker gave no reply within the per-request deadline.

    The ticket stays outstanding: the worker may be slow rather than
    stuck, so the caller decides — wait again, or escalate with
    :meth:`ShardPool.restart_shard` (which fails the shard's outstanding
    tickets and respawns the process).
    """


#: Reserved ShardPool method name: flush the worker hub's telemetry delta.
TELEMETRY_FLUSH = "__telemetry__"

#: Payload prefix marking tickets failed by :meth:`ShardPool.restart_shard`
#: (not by the request itself) — supervisors match on it to tell "your
#: request was collateral of a restart" from a real worker-side error.
SHARD_RESTARTED = "__shard_restarted__"


def _stop_process(proc, *, grace: float = 1.0, kill_grace: float = 5.0) -> str:
    """Stop a worker with terminate -> kill escalation; returns the outcome.

    ``terminate`` (SIGTERM) handles the common stuck worker; a worker
    that ignores SIGTERM (masked signal, wedged in native code) is
    escalated to ``kill`` (SIGKILL) after ``grace`` seconds. Returns
    ``"dead"`` (was already gone), ``"terminated"``, or ``"killed"``.
    """
    if not proc.is_alive():
        proc.join(timeout=0)
        return "dead"
    proc.terminate()
    proc.join(timeout=grace)
    if not proc.is_alive():
        return "terminated"
    proc.kill()
    proc.join(timeout=kill_grace)
    return "killed"


def _shard_worker(conn, factory, factory_args, telemetry_every) -> None:
    """Worker-process loop: build the host once, serve requests FIFO.

    Protocol: the parent sends ``(ticket, method, args, kwargs)`` tuples
    and eventually ``None`` (shutdown); each request is answered with
    ``(ticket, ok, payload, telemetry)`` where ``payload`` is the method's
    return value (``ok=True``) or a one-line error description
    (``ok=False`` — exceptions never cross the pipe, so an unpicklable
    error cannot wedge the shard).

    ``telemetry`` is usually ``None``; every ``telemetry_every`` requests
    (and on the reserved ``TELEMETRY_FLUSH`` method) it carries this
    worker hub's :class:`TelemetrySnapshot` delta as plain data, so the
    parent aggregates worker metrics *on the collect path* with no extra
    round trips. Without this, everything the shard's pipelines record
    lands on the worker's own hub and silently dies with the process.
    """
    host = factory(*factory_args)
    served = 0

    def delta() -> Optional[dict]:
        tel = get_telemetry()
        if not tel.enabled:
            return None
        snap = tel.snapshot_delta()
        return None if snap.is_empty() else snap.to_json()

    try:
        while True:
            msg = conn.recv()
            if msg is None:
                return
            ticket, method, args, kwargs = msg
            if method == TELEMETRY_FLUSH:
                conn.send((ticket, True, None, delta()))
                continue
            served += 1
            piggyback = (
                delta()
                if telemetry_every is not None and served % telemetry_every == 0
                else None
            )
            try:
                result = getattr(host, method)(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 — ship, don't die
                conn.send((ticket, False, f"{type(exc).__name__}: {exc}", piggyback))
            else:
                conn.send((ticket, True, result, piggyback))
    finally:
        closer = getattr(host, "close", None)
        if callable(closer):
            try:
                closer()
            except Exception:
                pass
        conn.close()


class ShardPool:
    """Long-lived worker processes with a **submit/collect** protocol.

    The wave pool above (:class:`ParallelRunner`) is one-shot: a grid
    cell ships its whole job to a worker, runs, and the worker forgets
    it. Fleet-scale session multiplexing needs the opposite — workers
    that *keep state resident* between calls (each shard hosts the live
    sessions of its slice of a device fleet). A :class:`ShardPool`
    starts ``n_shards`` processes, builds one **host object** per shard
    via ``factory(shard_index, *factory_args)`` (a module-level,
    picklable callable), and then serves method calls on that host:

    >>> pool = ShardPool(4, my_module.make_host)          # doctest: +SKIP
    >>> t = pool.submit(2, "ingest", device_id, chunk)    # doctest: +SKIP
    >>> pool.collect(t)                                   # doctest: +SKIP

    ``submit`` is non-blocking (requests pipeline per shard, FIFO);
    ``collect`` blocks until that ticket's reply arrives, buffering any
    replies it drains for other tickets. :meth:`call` is the synchronous
    convenience, :meth:`broadcast` fans one call over every shard.

    A request that raises in the worker surfaces as :class:`ShardError`
    at its ``collect`` — other requests (and other shards) are
    unaffected. A dead shard process also raises :class:`ShardError`.

    When the parent hub is live, each worker piggybacks a telemetry
    snapshot delta on every ``telemetry_every``-th reply; the pool merges
    it into the parent hub with a ``shard`` label as the reply is
    collected, and :meth:`flush_telemetry` (called automatically by
    :meth:`close`) pulls whatever is still outstanding — so worker-side
    metrics are aggregated losslessly instead of dying with the workers.
    """

    def __init__(
        self,
        n_shards: int,
        factory,
        *,
        factory_args: tuple = (),
        telemetry_every: Optional[int] = 64,
        request_timeout: Optional[float] = None,
    ) -> None:
        if int(n_shards) < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards!r}.")
        if telemetry_every is not None and int(telemetry_every) < 1:
            raise ConfigurationError(
                f"telemetry_every must be >= 1 or None, got {telemetry_every!r}."
            )
        if request_timeout is not None and float(request_timeout) <= 0:
            raise ConfigurationError(
                f"request_timeout must be positive or None, got {request_timeout!r}."
            )
        self._ctx = multiprocessing.get_context()
        self._factory = factory
        self._factory_args = tuple(factory_args)
        self._conns = []
        self._procs = []
        self.telemetry_every = (
            int(telemetry_every) if telemetry_every is not None else None
        )
        #: default deadline (seconds) applied by :meth:`collect` when no
        #: per-call ``timeout`` is given; ``None`` = wait forever.
        self.request_timeout = (
            float(request_timeout) if request_timeout is not None else None
        )
        #: parent-side hub worker deltas are merged into.
        self.telemetry: Telemetry = get_telemetry()
        for shard in range(int(n_shards)):
            parent, proc = self._spawn(shard)
            self._conns.append(parent)
            self._procs.append(proc)
        self._next_ticket = 0
        self._shard_of: Dict[int, int] = {}
        self._replies: Dict[int, Tuple[bool, Any]] = {}
        self._closed = False

    def _spawn(self, shard: int):
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker,
            args=(
                child,
                self._factory,
                (shard, *self._factory_args),
                self.telemetry_every,
            ),
            daemon=True,
            name=f"repro-shard-{shard}",
        )
        proc.start()
        child.close()
        return parent, proc

    @property
    def n_shards(self) -> int:
        return len(self._procs)

    def shard_alive(self, shard: int) -> bool:
        """Whether ``shard``'s worker process is currently running."""
        return self._procs[int(shard)].is_alive()

    def worker_pid(self, shard: int) -> Optional[int]:
        """OS pid of ``shard``'s worker (chaos harnesses target this)."""
        return self._procs[int(shard)].pid

    def submit(self, shard: int, method: str, *args, **kwargs) -> int:
        """Queue ``host.method(*args, **kwargs)`` on ``shard``; returns a ticket."""
        if self._closed:
            raise ConfigurationError("ShardPool is closed.")
        if not 0 <= int(shard) < len(self._conns):
            raise ConfigurationError(
                f"shard {shard} out of range (pool has {len(self._conns)})."
            )
        ticket = self._next_ticket
        self._next_ticket += 1
        self._shard_of[ticket] = int(shard)
        try:
            self._conns[shard].send((ticket, method, args, kwargs))
        except (BrokenPipeError, OSError) as exc:
            self._shard_of.pop(ticket, None)
            raise ShardDiedError(f"shard {shard} is dead: {exc}") from exc
        return ticket

    #: collect() sentinel: "use the pool's default request_timeout".
    _POOL_DEFAULT = object()

    def collect(self, ticket: int, *, timeout: Any = _POOL_DEFAULT) -> Any:
        """Block until ``ticket``'s reply arrives; return (or raise) it.

        ``timeout`` (seconds) bounds the wait: when no reply lands within
        the deadline a :class:`ShardTimeoutError` is raised and the
        ticket stays outstanding (collect again, or escalate via
        :meth:`restart_shard`). Defaults to the pool's
        ``request_timeout``; pass ``None`` to wait forever.
        """
        if timeout is ShardPool._POOL_DEFAULT:
            timeout = self.request_timeout
        if ticket not in self._replies and ticket not in self._shard_of:
            raise ConfigurationError(f"unknown or already-collected ticket {ticket}.")
        shard = self._shard_of.get(ticket)
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        while ticket not in self._replies:
            conn = self._conns[shard]
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not conn.poll(remaining):
                    raise ShardTimeoutError(
                        f"shard {shard} gave no reply for ticket {ticket} "
                        f"within {float(timeout):g}s.",
                        ticket=ticket,
                        shard=shard,
                    )
            try:
                t, ok, payload, tel_delta = conn.recv()
            except (EOFError, OSError) as exc:
                raise ShardDiedError(
                    f"shard {shard} died with {len(self._shard_of)} "
                    "request(s) outstanding.",
                    ticket=ticket,
                    shard=shard,
                ) from exc
            if tel_delta is not None and self.telemetry.enabled:
                self.telemetry.merge(tel_delta, extra_labels={"shard": shard})
            self._replies[t] = (ok, payload)
            self._shard_of.pop(t, None)
        ok, payload = self._replies.pop(ticket)
        if not ok:
            raise ShardError(
                f"shard request failed: {payload}", ticket=ticket, shard=shard
            )
        return payload

    def collect_any(
        self,
        tickets: Optional[Iterable[int]] = None,
        *,
        timeout: Any = _POOL_DEFAULT,
    ) -> Tuple[int, Any]:
        """Block until *any* wanted ticket's reply is ready; return it.

        ``tickets`` restricts the wait to those tickets (default: every
        outstanding or buffered ticket). Returns ``(ticket, payload)``
        for the lowest-numbered ready ticket — deterministic when
        several replies are already buffered. Unlike :meth:`collect`,
        the wait multiplexes over **all** shards that still owe a wanted
        reply (``multiprocessing.connection.wait``), so one slow shard
        cannot stall results that other shards already produced — the
        head-of-line fix the fleet drain and the serving dispatcher
        build on.

        A failed request raises :class:`ShardError` with ``.ticket``
        set (that ticket is consumed; the rest stay collectable). A
        dead worker raises :class:`ShardDiedError` with ``.shard`` set
        and leaves its tickets outstanding for the caller to recover
        (e.g. via :meth:`restart_shard`).
        """
        if timeout is ShardPool._POOL_DEFAULT:
            timeout = self.request_timeout
        wanted: Optional[set] = None
        if tickets is not None:
            wanted = {int(t) for t in tickets}
            unknown = [
                t
                for t in wanted
                if t not in self._replies and t not in self._shard_of
            ]
            if unknown:
                raise ConfigurationError(
                    f"unknown or already-collected ticket(s) {sorted(unknown)}."
                )
            if not wanted:
                raise ConfigurationError("collect_any of an empty ticket set.")
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        while True:
            ready_tickets = (
                self._replies.keys()
                if wanted is None
                else wanted & self._replies.keys()
            )
            if ready_tickets:
                ticket = min(ready_tickets)
                ok, payload = self._replies.pop(ticket)
                if not ok:
                    raise ShardError(
                        f"shard request failed: {payload}", ticket=ticket
                    )
                return ticket, payload
            owing = {
                s
                for t, s in self._shard_of.items()
                if wanted is None or t in wanted
            }
            if not owing:
                raise ConfigurationError("no outstanding tickets to collect.")
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                ready = []
            else:
                ready = mp_connection.wait(
                    [self._conns[s] for s in sorted(owing)], timeout=remaining
                )
            if not ready:
                raise ShardTimeoutError(
                    f"no reply from shard(s) {sorted(owing)} within "
                    f"{float(timeout):g}s."
                )
            shard_of_conn = {id(self._conns[s]): s for s in owing}
            for conn in ready:
                shard = shard_of_conn[id(conn)]
                try:
                    t, ok, payload, tel_delta = conn.recv()
                except (EOFError, OSError) as exc:
                    raise ShardDiedError(
                        f"shard {shard} died with {len(self._shard_of)} "
                        "request(s) outstanding.",
                        shard=shard,
                    ) from exc
                if tel_delta is not None and self.telemetry.enabled:
                    self.telemetry.merge(tel_delta, extra_labels={"shard": shard})
                self._replies[t] = (ok, payload)
                self._shard_of.pop(t, None)

    def restart_shard(self, shard: int, *, grace: float = 1.0) -> str:
        """Stop ``shard``'s worker (if needed) and spawn a fresh one.

        The escalation is terminate -> kill (:func:`_stop_process`); an
        already-dead worker is just reaped. Every outstanding ticket of
        the shard is failed with a :data:`SHARD_RESTARTED`-prefixed
        payload — their requests may or may not have executed, and the
        fresh worker's host starts empty, so it is the caller's job
        (e.g. the fleet supervisor) to re-seed state and replay. Returns
        the stop outcome (``"dead"``/``"terminated"``/``"killed"``).
        """
        if self._closed:
            raise ConfigurationError("ShardPool is closed.")
        shard = int(shard)
        if not 0 <= shard < len(self._procs):
            raise ConfigurationError(
                f"shard {shard} out of range (pool has {len(self._procs)})."
            )
        outcome = _stop_process(self._procs[shard], grace=grace)
        try:
            self._conns[shard].close()
        except OSError:  # pragma: no cover — close on a broken pipe
            pass
        for ticket in [t for t, s in self._shard_of.items() if s == shard]:
            self._replies[ticket] = (
                False,
                f"{SHARD_RESTARTED}: shard {shard} worker restarted ({outcome}).",
            )
            del self._shard_of[ticket]
        parent, proc = self._spawn(shard)
        self._conns[shard] = parent
        self._procs[shard] = proc
        return outcome

    def call(self, shard: int, method: str, *args, **kwargs) -> Any:
        """Synchronous ``submit`` + ``collect`` on one shard."""
        return self.collect(self.submit(shard, method, *args, **kwargs))

    def broadcast(self, method: str, *args, **kwargs) -> List[Any]:
        """Call ``method`` on every shard; returns results in shard order."""
        tickets = [
            self.submit(shard, method, *args, **kwargs)
            for shard in range(self.n_shards)
        ]
        return [self.collect(t) for t in tickets]

    def flush_telemetry(self) -> None:
        """Pull every worker hub's outstanding snapshot delta into the
        parent hub now (the collect path merges them as they arrive)."""
        self.broadcast(TELEMETRY_FLUSH)

    def close(self, *, grace: float = 10.0) -> None:
        """Shut every shard down (idempotent); outstanding replies are dropped.

        ``grace`` bounds the polite wait per worker; one still alive
        after that (stuck mid-request, ignoring the shutdown sentinel)
        is escalated terminate -> kill via :func:`_stop_process`.
        """
        if self._closed:
            return
        if self.telemetry.enabled:
            try:
                self.flush_telemetry()
            except (ShardError, ConfigurationError):
                pass  # a dead shard's unflushed delta is unrecoverable
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=grace)
            if proc.is_alive():
                _stop_process(proc, grace=grace)
        for conn in self._conns:
            conn.close()
        self._shard_of.clear()
        self._replies.clear()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def make_grid(
    methods: Mapping[str, Tuple[str, Mapping[str, Any]]],
    streams: Mapping[str, Tuple[str, Mapping[str, Any]]],
    seeds: Iterable[int],
    **cell_kwargs,
) -> List[ExperimentSpec]:
    """Cross ``methods × streams × seeds`` into a flat list of specs.

    ``methods`` maps a display name to ``(builder_key, builder_kwargs)``;
    ``streams`` maps a stream label to ``(factory_key, factory_kwargs)``.
    Extra ``cell_kwargs`` (``n_test``, ``chunk_size``, ``model_seed``,
    ``guard_policy``) apply to every cell.
    """
    cells: List[ExperimentSpec] = []
    for seed in seeds:
        for stream_label, (stream_key, stream_kwargs) in streams.items():
            for method_label, (method_key, method_kwargs) in methods.items():
                cells.append(
                    ExperimentSpec(
                        name=method_label if len(streams) == 1 else f"{method_label} @ {stream_label}",
                        pipeline=method_key,
                        dataset=stream_key,
                        seed=int(seed),
                        pipeline_kwargs=dict(method_kwargs),
                        dataset_kwargs=dict(stream_kwargs),
                        **cell_kwargs,
                    )
                )
    return cells
