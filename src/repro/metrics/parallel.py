"""Parallel experiment grid runner — (method × stream × seed) at scale.

The paper's tables are grids: every method configuration replayed over
every stream for one or more seeds. :func:`~repro.metrics.runner.compare_methods`
runs such a grid serially in-process; this module fans the cells across a
:class:`concurrent.futures.ProcessPoolExecutor` instead, with

* **declarative cells** (:class:`CellSpec`) naming a registered pipeline
  builder and stream factory plus their kwargs — specs are picklable and
  JSON-canonical, so any cell can be shipped to a worker or hashed;
* **per-cell seeding** — the spec's ``seed`` goes to the pipeline builder
  (and to the stream factory unless its kwargs pin one), so results are a
  pure function of the spec and identical for any ``max_workers``;
* **timeout/retry** — a cell that raises, times out, or loses its worker
  process is retried on a fresh pool up to ``retries`` times;
* **an on-disk JSON result cache** keyed by a hash of the canonical spec —
  re-running a grid only computes the cells that changed.

Results come back as :class:`CellResult` — a JSON round-trippable summary
(accuracy, delays, phase tally, memory, wall-clock) that can optionally
carry the full per-sample records and rebuild a
:class:`~repro.metrics.runner.MethodResult` for downstream tooling.

Example
-------
>>> runner = ParallelRunner(cache_dir="results/", max_workers=4)
>>> cells = make_grid(
...     methods={"Proposed (W=100)": ("proposed", {"window_size": 100}),
...              "Baseline": ("baseline", {})},
...     streams={"nslkdd": ("nslkdd", {"seed": 0})},
...     seeds=[1, 2, 3],
... )
>>> results = runner.run(cells)   # doctest: +SKIP
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core import factory
from ..core.pipeline import StepRecord
from ..datasets.stream import DataStream
from ..device.timing import PhaseTally
from ..resilience.reclog import remove_run_checkpoint
from ..telemetry import Telemetry, get_telemetry
from ..utils.exceptions import ConfigurationError
from .delay import delay_report
from .runner import MethodResult, evaluate_method

__all__ = [
    "CellSpec",
    "CellResult",
    "ParallelRunner",
    "ParallelExecutionError",
    "make_grid",
    "run_cell",
    "METHOD_BUILDERS",
    "STREAM_FACTORIES",
]

#: Bump when the cached-result layout changes; stale cache files are ignored.
_CACHE_VERSION = 1


def _package_version() -> str:
    """The installed ``repro.__version__`` (imported lazily: the package
    ``__init__`` defines it *after* importing this module)."""
    from .. import __version__

    return __version__


class ParallelExecutionError(RuntimeError):
    """A grid cell kept failing after all retries."""


# --------------------------------------------------------------------------
# Registries — what a CellSpec's string keys resolve to in a worker process
# --------------------------------------------------------------------------

def _stream_nslkdd(**kwargs) -> Tuple[DataStream, DataStream]:
    from ..datasets import make_nslkdd_like
    from ..datasets.nslkdd import NSLKDDConfig

    config_kwargs = {
        k: kwargs.pop(k)
        for k in list(kwargs)
        if k in {f.name for f in NSLKDDConfig.__dataclass_fields__.values()}
    }
    config = NSLKDDConfig(**config_kwargs) if config_kwargs else None
    return make_nslkdd_like(config, **kwargs)


def _stream_cooling_fan(**kwargs) -> Tuple[DataStream, DataStream]:
    from ..datasets import make_cooling_fan_like

    scenario = kwargs.pop("scenario", "sudden")
    return make_cooling_fan_like(scenario, **kwargs)


def _stream_blobs(
    *,
    n_features: int = 6,
    n_train: int = 240,
    n_test: int = 1200,
    drift_at: int = 400,
    shift: float = 0.45,
    seed: int = 0,
) -> Tuple[DataStream, DataStream]:
    """Small two-blob sudden-drift pair — fast cells for tests/examples."""
    from ..datasets import GaussianConcept, make_stationary_stream, make_sudden_drift_stream

    rng = np.random.default_rng(seed)
    means = rng.uniform(0.1, 0.9, size=(2, n_features))
    means[1] = 1.0 - means[0]
    old = GaussianConcept(means, 0.05)
    moved = means.copy()
    moved[0] = moved[0] + shift * (moved[1] - moved[0])
    new = GaussianConcept(moved, 0.08)
    train = make_stationary_stream(old, n_train, seed=seed, name="train")
    test = make_sudden_drift_stream(
        old, new, n_samples=n_test, drift_at=drift_at, seed=seed + 1, name="blobs"
    )
    return train, test


#: Pipeline builders addressable from a :class:`CellSpec` (all accept
#: ``(X, y, *, seed=..., **kwargs)`` and return a ready pipeline).
METHOD_BUILDERS: Dict[str, Callable[..., Any]] = {
    "proposed": factory.build_proposed,
    "baseline": factory.build_baseline,
    "onlad": factory.build_onlad,
    "quanttree": factory.build_quanttree_pipeline,
    "spll": factory.build_spll_pipeline,
    "hdddm": factory.build_hdddm_pipeline,
}

#: Stream factories addressable from a :class:`CellSpec` (return
#: ``(train, test)`` :class:`DataStream` pairs).
STREAM_FACTORIES: Dict[str, Callable[..., Tuple[DataStream, DataStream]]] = {
    "nslkdd": _stream_nslkdd,
    "coolingfan": _stream_cooling_fan,
    "blobs": _stream_blobs,
}


def _resolve(registry: Mapping[str, Callable], key: str, kind: str) -> Callable:
    """Look up ``key`` in ``registry`` or import a ``module:attr`` path."""
    if key in registry:
        return registry[key]
    if ":" in key:
        mod, attr = key.split(":", 1)
        return getattr(importlib.import_module(mod), attr)
    raise ConfigurationError(
        f"unknown {kind} {key!r}; registered: {sorted(registry)} "
        f"(or use a 'module:callable' path)."
    )


# --------------------------------------------------------------------------
# Cell specification and result
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CellSpec:
    """One (method × stream × seed) grid cell, fully declarative.

    Parameters
    ----------
    name:
        Display name (table row label). Not part of the cache key.
    method:
        Key into :data:`METHOD_BUILDERS` or a ``"module:callable"`` path to
        a builder with the factory signature ``(X, y, *, seed, **kwargs)``.
    stream:
        Key into :data:`STREAM_FACTORIES` or a ``"module:callable"`` path
        returning a ``(train, test)`` stream pair.
    seed:
        Per-cell seed: forwarded to the builder as ``seed=``, and to the
        stream factory too unless ``stream_kwargs`` pins its own ``seed``.
    method_kwargs, stream_kwargs:
        Extra keyword arguments for builder / factory (JSON-serializable).
    n_test:
        Truncate the test stream to its first ``n_test`` samples (None =
        full stream).
    chunk_size:
        Forwarded to :meth:`StreamPipeline.run` (None = default fast path).
    """

    name: str
    method: str
    stream: str
    seed: int = 0
    method_kwargs: Mapping[str, Any] = field(default_factory=dict)
    stream_kwargs: Mapping[str, Any] = field(default_factory=dict)
    n_test: Optional[int] = None
    chunk_size: Optional[int] = None

    def canonical(self) -> dict:
        """Order-independent dict of everything that affects the result."""
        return {
            "version": _CACHE_VERSION,
            "method": self.method,
            "stream": self.stream,
            "seed": int(self.seed),
            "method_kwargs": dict(sorted(self.method_kwargs.items())),
            "stream_kwargs": dict(sorted(self.stream_kwargs.items())),
            "n_test": self.n_test,
            "chunk_size": self.chunk_size,
        }

    def config_hash(self) -> str:
        """Stable hash of :meth:`canonical` — the cache key."""
        blob = json.dumps(self.canonical(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]


_RECORD_FIELDS = (
    "index", "predicted", "true_label", "correct",
    "anomaly_score", "drift_detected", "reconstructing", "phase",
)


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars to builtins; JSON floats round-trip exactly."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _records_to_columns(records: Sequence[StepRecord]) -> Dict[str, list]:
    return {f: [_jsonable(getattr(r, f)) for r in records] for f in _RECORD_FIELDS}


def _columns_to_records(cols: Mapping[str, list]) -> List[StepRecord]:
    return [StepRecord(*vals) for vals in zip(*(cols[f] for f in _RECORD_FIELDS))]


@dataclass
class CellResult:
    """JSON round-trippable outcome of one grid cell."""

    name: str
    spec: dict
    accuracy: float
    delays: List[Optional[int]]
    false_positives: List[int]
    detections: List[int]
    drift_points: List[int]
    phase_counts: Dict[str, int]
    wall_seconds: float
    detector_nbytes: int
    n_records: int
    records: Optional[Dict[str, list]] = None
    from_cache: bool = False
    attempts: int = 1
    #: stream position this cell resumed from (None = ran start to finish)
    resumed_at: Optional[int] = None

    @property
    def first_delay(self) -> Optional[int]:
        return self.delays[0] if self.delays else None

    def to_json(self) -> dict:
        out = dict(self.__dict__)
        out.pop("from_cache")
        return out

    @classmethod
    def from_json(cls, data: Mapping[str, Any], *, from_cache: bool = False) -> "CellResult":
        return cls(**{**data, "from_cache": from_cache})

    def to_method_result(self) -> MethodResult:
        """Rebuild a full :class:`MethodResult` (needs stored records)."""
        if self.records is None:
            raise ConfigurationError(
                f"cell {self.name!r} was run without keep_records=True; "
                "per-sample records are not available."
            )
        records = _columns_to_records(self.records)
        return MethodResult(
            name=self.name,
            records=records,
            accuracy=self.accuracy,
            delay=delay_report(records, self.drift_points),
            phase_tally=PhaseTally.from_records(records),
            wall_seconds=self.wall_seconds,
            detector_nbytes=self.detector_nbytes,
        )


# --------------------------------------------------------------------------
# Worker entry point (module-level: must be picklable for the process pool)
# --------------------------------------------------------------------------

def run_cell(
    spec: CellSpec,
    *,
    keep_records: bool = False,
    checkpoint_path: Optional[str | os.PathLike] = None,
    checkpoint_every: Optional[int] = None,
) -> CellResult:
    """Execute one grid cell in the current process.

    Deterministic in the spec alone: streams and models derive every RNG
    from the spec's seeds, so this returns identical numbers whether it
    runs inline, in any worker process, or on another host.

    With ``checkpoint_path`` the cell is crash-safe: the pipeline state is
    checkpointed every ``checkpoint_every`` samples, a retry after a crash
    resumes from the last checkpoint (numbers identical to an unbroken
    run), and the file is removed once the cell completes. A corrupt
    checkpoint is discarded and the cell restarts from sample 0.
    """
    stream_factory = _resolve(STREAM_FACTORIES, spec.stream, "stream factory")
    stream_kwargs = dict(spec.stream_kwargs)
    stream_kwargs.setdefault("seed", int(spec.seed))
    train, test = stream_factory(**stream_kwargs)
    if spec.n_test is not None:
        test = test.take(int(spec.n_test))

    builder = _resolve(METHOD_BUILDERS, spec.method, "method builder")
    pipeline = builder(train.X, train.y, seed=int(spec.seed), **dict(spec.method_kwargs))

    result = evaluate_method(
        pipeline,
        test,
        name=spec.name,
        chunk_size=spec.chunk_size,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
    )
    if checkpoint_path is not None:
        # The cell finished: its checkpoint is spent (a later re-run must
        # not "resume" past the end of a completed stream).
        remove_run_checkpoint(checkpoint_path)
    return CellResult(
        name=spec.name,
        spec=spec.canonical(),
        accuracy=float(result.accuracy),
        delays=list(result.delay.delays),
        false_positives=list(result.delay.false_positives),
        detections=list(result.delay.detections),
        drift_points=list(test.drift_points),
        phase_counts=dict(result.phase_tally.counts),
        wall_seconds=float(result.wall_seconds),
        detector_nbytes=int(result.detector_nbytes),
        n_records=len(result.records),
        records=_records_to_columns(result.records) if keep_records else None,
        resumed_at=result.resumed_at,
    )


def _run_cell_job(args: Tuple[CellSpec, bool, Optional[str], Optional[int]]) -> CellResult:
    spec, keep_records, checkpoint_path, checkpoint_every = args
    return run_cell(
        spec,
        keep_records=keep_records,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
    )


# --------------------------------------------------------------------------
# The runner
# --------------------------------------------------------------------------

class ParallelRunner:
    """Fan a list of :class:`CellSpec` over worker processes, with caching.

    Parameters
    ----------
    cache_dir:
        Directory for per-cell JSON results (created on demand). ``None``
        disables caching.
    max_workers:
        Pool width. ``0`` or ``1`` runs cells inline in this process (no
        pool) — handy for debugging and exact single-process semantics;
        ``None`` uses ``os.cpu_count()``.
    timeout:
        Per-cell wall-clock limit in seconds (``None`` = unlimited). A
        timed-out cell counts as a failure and is retried.
    retries:
        How many *extra* attempts a failing cell gets (on a fresh pool)
        before :class:`ParallelExecutionError` is raised.
    keep_records:
        Store per-sample records in results (and in the cache) so
        :meth:`CellResult.to_method_result` can rebuild full results.
    checkpoint_dir:
        Directory for per-cell crash-recovery checkpoints (created on
        demand; keyed by the spec hash like the cache). When set, a cell
        that dies mid-stream resumes from its last checkpoint on retry
        instead of starting over, with identical final numbers; the
        checkpoint is deleted once the cell completes. ``None`` disables
        crash recovery.
    checkpoint_every:
        Checkpoint cadence in samples (used only with ``checkpoint_dir``).
    """

    def __init__(
        self,
        cache_dir: Optional[str | os.PathLike] = None,
        *,
        max_workers: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        keep_records: bool = False,
        checkpoint_dir: Optional[str | os.PathLike] = None,
        checkpoint_every: int = 256,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_workers = max_workers
        self.timeout = timeout
        self.retries = int(retries)
        self.keep_records = bool(keep_records)
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self.checkpoint_every = int(checkpoint_every)
        #: telemetry hub (the process default; reassign for private capture).
        #: Counters/events are recorded in the *parent* process only —
        #: worker processes have their own (disabled) default hubs.
        self.telemetry: Telemetry = get_telemetry()

    # -- cache ------------------------------------------------------------------

    def _cache_path(self, spec: CellSpec) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{spec.config_hash()}.json"

    def _checkpoint_path(self, spec: CellSpec) -> Optional[Path]:
        if self.checkpoint_dir is None:
            return None
        return self.checkpoint_dir / f"{spec.config_hash()}.ckpt"

    def _cache_load(self, spec: CellSpec) -> Optional[CellResult]:
        path = self._cache_path(spec)
        if path is None or not path.is_file():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if data.pop("repro_version", None) != _package_version():
            # Written by a different library version: the algorithms may
            # have changed under the spec, so the entry is stale.
            return None
        if data.get("spec") != spec.canonical():
            return None  # hash collision or stale layout — recompute
        if self.keep_records and data.get("records") is None:
            return None  # cached without records but records requested now
        data.setdefault("name", spec.name)
        result = CellResult.from_json(data, from_cache=True)
        result.name = spec.name  # display name may differ between runs
        return result

    def _cache_store(self, result: CellResult) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        spec_hash = hashlib.sha256(
            json.dumps(result.spec, sort_keys=True).encode()
        ).hexdigest()[:16]
        path = self.cache_dir / f"{spec_hash}.json"
        tmp = path.with_suffix(".tmp")
        payload = result.to_json()
        payload["repro_version"] = _package_version()
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)  # atomic: parallel runners never see half files

    # -- execution --------------------------------------------------------------

    def run(self, cells: Sequence[CellSpec]) -> List[CellResult]:
        """Run every cell; returns results aligned with the input order."""
        tel = self.telemetry
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        results: List[Optional[CellResult]] = [None] * len(cells)
        pending: List[int] = []
        for i, spec in enumerate(cells):
            cached = self._cache_load(spec)
            if cached is not None:
                results[i] = cached
                if tel.enabled:
                    tel.registry.counter(
                        "parallel.cache_hits", "grid cells served from cache"
                    ).inc()
                    tel.emit("cell_cache_hit", name=spec.name)
            else:
                pending.append(i)
                if tel.enabled and self.cache_dir is not None:
                    tel.registry.counter(
                        "parallel.cache_misses", "grid cells not found in cache"
                    ).inc()

        errors: Dict[int, str] = {}
        for attempt in range(1 + self.retries):
            if not pending:
                break
            if attempt and tel.enabled:
                tel.registry.counter(
                    "parallel.retry_waves", "extra attempts over failed cells"
                ).inc()
                tel.emit("retry_wave", attempt=attempt + 1, cells=len(pending))
            pending, errors = self._run_wave(cells, pending, results, attempt + 1)
        if pending:
            detail = "; ".join(
                f"{cells[i].name!r}: {errors.get(i, 'unknown error')}" for i in pending
            )
            raise ParallelExecutionError(
                f"{len(pending)} cell(s) failed after {1 + self.retries} attempt(s): {detail}"
            )
        return results  # type: ignore[return-value]

    def run_grid(
        self,
        methods: Mapping[str, Tuple[str, Mapping[str, Any]]],
        streams: Mapping[str, Tuple[str, Mapping[str, Any]]],
        seeds: Iterable[int],
        **cell_kwargs,
    ) -> Dict[Tuple[str, str, int], CellResult]:
        """Run the full cross product; returns ``(method, stream, seed) →`` result."""
        cells = make_grid(methods, streams, seeds, **cell_kwargs)
        keys = [
            (m, s, int(seed))
            for seed in seeds
            for s in streams
            for m in methods
        ]
        return dict(zip(keys, self.run(cells)))

    def _run_wave(
        self,
        cells: Sequence[CellSpec],
        pending: List[int],
        results: List[Optional[CellResult]],
        attempt: int,
    ) -> Tuple[List[int], Dict[int, str]]:
        """One attempt over the still-missing cells; returns (failures, errors)."""
        tel = self.telemetry
        failures: List[int] = []
        errors: Dict[int, str] = {}

        def record(i: int, result: CellResult) -> None:
            result.attempts = attempt
            results[i] = result
            self._cache_store(result)
            if tel.enabled:
                tel.registry.counter(
                    "parallel.cells_run", "grid cells computed (not cached)"
                ).inc()
                if result.resumed_at is not None:
                    tel.registry.counter(
                        "parallel.resumes", "cells resumed from a crash checkpoint"
                    ).inc()
                    tel.emit(
                        "cell_resumed", name=result.name, position=result.resumed_at
                    )
                tel.emit(
                    "cell_finished",
                    name=result.name,
                    attempt=attempt,
                    wall_seconds=result.wall_seconds,
                )

        def failed(i: int, reason: str, *, timeout: bool = False) -> None:
            failures.append(i)
            errors[i] = reason
            if tel.enabled:
                tel.registry.counter(
                    "parallel.failures", "cell attempts that failed"
                ).inc()
                if timeout:
                    tel.registry.counter(
                        "parallel.timeouts", "cell attempts that timed out"
                    ).inc()
                tel.emit(
                    "cell_failed", name=cells[i].name, attempt=attempt, error=reason
                )

        workers = os.cpu_count() or 1 if self.max_workers is None else self.max_workers
        if workers <= 1:
            # Inline mode: exact single-process semantics, no pool. Timeouts
            # need a worker process to enforce, so they do not apply here.
            for i in pending:
                tel.emit("cell_started", name=cells[i].name, attempt=attempt)
                try:
                    ckpt = self._checkpoint_path(cells[i])
                    record(
                        i,
                        run_cell(
                            cells[i],
                            keep_records=self.keep_records,
                            checkpoint_path=ckpt,
                            checkpoint_every=(
                                self.checkpoint_every if ckpt is not None else None
                            ),
                        ),
                    )
                except Exception as exc:  # noqa: BLE001 — isolate per cell
                    failed(i, f"{type(exc).__name__}: {exc}")
            return failures, errors

        executor = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = {
                i: executor.submit(
                    _run_cell_job,
                    (
                        cells[i],
                        self.keep_records,
                        (
                            str(self._checkpoint_path(cells[i]))
                            if self.checkpoint_dir is not None
                            else None
                        ),
                        (
                            self.checkpoint_every
                            if self.checkpoint_dir is not None
                            else None
                        ),
                    ),
                )
                for i in pending
            }
            for i in pending:
                tel.emit("cell_started", name=cells[i].name, attempt=attempt)
            broken = False
            for i, fut in futures.items():
                if broken:
                    failures.append(i)
                    errors.setdefault(i, "process pool broke earlier this wave")
                    continue
                try:
                    record(i, fut.result(timeout=self.timeout))
                except FutureTimeout:
                    failed(i, f"timed out after {self.timeout}s", timeout=True)
                except Exception as exc:  # noqa: BLE001 — worker died or raised
                    failed(i, f"{type(exc).__name__}: {exc}")
                    if type(exc).__name__ == "BrokenProcessPool":
                        broken = True
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return failures, errors


def make_grid(
    methods: Mapping[str, Tuple[str, Mapping[str, Any]]],
    streams: Mapping[str, Tuple[str, Mapping[str, Any]]],
    seeds: Iterable[int],
    **cell_kwargs,
) -> List[CellSpec]:
    """Cross ``methods × streams × seeds`` into a flat list of cells.

    ``methods`` maps a display name to ``(builder_key, builder_kwargs)``;
    ``streams`` maps a stream label to ``(factory_key, factory_kwargs)``.
    Extra ``cell_kwargs`` (``n_test``, ``chunk_size``) apply to every cell.
    """
    cells: List[CellSpec] = []
    for seed in seeds:
        for stream_label, (stream_key, stream_kwargs) in streams.items():
            for method_label, (method_key, method_kwargs) in methods.items():
                cells.append(
                    CellSpec(
                        name=method_label if len(streams) == 1 else f"{method_label} @ {stream_label}",
                        method=method_key,
                        stream=stream_key,
                        seed=int(seed),
                        method_kwargs=dict(method_kwargs),
                        stream_kwargs=dict(stream_kwargs),
                        **cell_kwargs,
                    )
                )
    return cells
