"""Terminal-friendly plotting helpers (sparklines, bars, scatter).

The examples and benchmark outputs render their "figures" as text so that
``bench_output.txt`` is self-contained; these are the shared primitives
(previously duplicated across example scripts).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from ..utils.exceptions import ConfigurationError, DataValidationError
from ..utils.validation import check_positive

__all__ = ["sparkline", "hbar_chart", "ascii_scatter"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float],
    *,
    width: int = 50,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Render a series as a fixed-width unicode sparkline.

    ``lo``/``hi`` pin the scale (useful to compare several series);
    they default to the series' own range.
    """
    check_positive(width, "width")
    v = np.asarray(values, dtype=np.float64).ravel()
    if v.size == 0:
        raise DataValidationError("values must be non-empty.")
    if not np.all(np.isfinite(v)):
        raise DataValidationError("values contain NaN or infinite entries.")
    lo = float(v.min()) if lo is None else float(lo)
    hi = float(v.max()) if hi is None else float(hi)
    if hi < lo:
        raise ConfigurationError(f"hi ({hi}) must be >= lo ({lo}).")
    idx = np.linspace(0, v.size - 1, min(width, v.size)).astype(int)
    span = hi - lo
    out = []
    for val in v[idx]:
        t = 0.5 if span == 0 else np.clip((val - lo) / span, 0.0, 1.0)
        out.append(_BLOCKS[int(t * (len(_BLOCKS) - 1))])
    return "".join(out)


def hbar_chart(
    data: Mapping[str, float],
    *,
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart with right-aligned labels and values."""
    check_positive(width, "width")
    if not data:
        raise DataValidationError("data must be non-empty.")
    vals = {k: float(v) for k, v in data.items()}
    if any(v < 0 for v in vals.values()):
        raise DataValidationError("hbar_chart expects non-negative values.")
    peak = max(vals.values()) or 1.0
    label_w = max(len(k) for k in vals)
    lines = []
    for k, v in vals.items():
        bar = "#" * int(round(width * v / peak))
        lines.append(f"{k.rjust(label_w)} | {bar} {v:g}{unit}")
    return "\n".join(lines)


def ascii_scatter(
    points_by_glyph: Mapping[str, np.ndarray],
    *,
    width: int = 64,
    height: int = 20,
    bounds: tuple[float, float, float, float] = (0.0, 1.0, 0.0, 1.0),
) -> str:
    """2-D scatter in a character grid; later glyphs overdraw earlier ones.

    ``bounds`` is ``(xmin, xmax, ymin, ymax)``; points outside are clipped
    onto the border.
    """
    check_positive(width, "width")
    check_positive(height, "height")
    xmin, xmax, ymin, ymax = bounds
    if xmax <= xmin or ymax <= ymin:
        raise ConfigurationError("bounds must satisfy xmin < xmax and ymin < ymax.")
    grid = [[" "] * width for _ in range(height)]
    for glyph, pts in points_by_glyph.items():
        if len(glyph) != 1:
            raise ConfigurationError(f"glyph must be one character, got {glyph!r}.")
        for x, y in np.atleast_2d(np.asarray(pts, dtype=np.float64)):
            tx = np.clip((x - xmin) / (xmax - xmin), 0.0, 1.0 - 1e-9)
            ty = np.clip((y - ymin) / (ymax - ymin), 0.0, 1.0 - 1e-9)
            grid[height - 1 - int(ty * height)][int(tx * width)] = glyph
    border = "+" + "-" * width + "+"
    return "\n".join([border, *("|" + "".join(row) + "|" for row in grid), border])
