"""Experiment runner: one call per (method, stream) cell of the paper's tables.

:func:`evaluate_method` streams a :class:`DataStream` through a pipeline
and packages everything the tables need — accuracy, delays, phase tallies,
wall-clock time, memory — into a :class:`MethodResult`.
:func:`compare_methods` runs a whole method dictionary (e.g. the paper's
five configurations) over one stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Union

import numpy as np

from ..core.pipeline import StepRecord, StreamPipeline
from ..datasets.stream import DataStream
from ..device.timing import PhaseTally
from ..resilience.reclog import remove_run_checkpoint
from ..utils.exceptions import CheckpointCorruptError, DataValidationError
from .accuracy import overall_accuracy, windowed_accuracy
from .delay import DelayReport, delay_report

__all__ = ["MethodResult", "evaluate_method", "compare_methods"]


@dataclass
class MethodResult:
    """Everything measured for one method on one stream."""

    name: str
    records: List[StepRecord]
    accuracy: float
    delay: DelayReport
    phase_tally: PhaseTally
    wall_seconds: float
    detector_nbytes: int
    #: Stream position an interrupted run was resumed from (None = fresh run).
    resumed_at: Optional[int] = None

    @property
    def first_delay(self) -> Optional[int]:
        return self.delay.first_delay

    def accuracy_curve(self, window: int = 500) -> tuple[np.ndarray, np.ndarray]:
        """Moving-accuracy series for Figure-4-style plots."""
        return windowed_accuracy(self.records, window)

    def summary_row(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "method": self.name,
            "accuracy_pct": 100.0 * self.accuracy,
            "delay": self.first_delay,
            "false_positives": len(self.delay.false_positives),
            "wall_seconds": self.wall_seconds,
            "detector_kb": self.detector_nbytes / 1000.0,
        }


def _resume_with_position(
    pipeline: StreamPipeline,
    stream: DataStream,
    ckpt: Path,
    *,
    chunk_size: Optional[int],
    checkpoint_every: int,
) -> tuple[List[StepRecord], int]:
    records = pipeline.resume(
        stream, ckpt, chunk_size=chunk_size, checkpoint_every=checkpoint_every
    )
    return records, int(pipeline.last_resumed_at)


def evaluate_method(
    pipeline: StreamPipeline,
    stream: DataStream,
    *,
    name: Optional[str] = None,
    chunk_size: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    resume: bool = True,
) -> MethodResult:
    """Run ``pipeline`` over ``stream`` and collect all metrics.

    ``chunk_size`` is forwarded to :meth:`StreamPipeline.run` (``None``
    keeps the pipeline's default vectorized chunking; ``1`` forces the
    per-sample reference path — records are identical either way).

    When ``checkpoint_path`` is given the run is crash-safe: state is
    saved every ``checkpoint_every`` samples (default 256), and if a
    checkpoint already exists there (and ``resume`` is true) the run
    continues from it instead of starting over — producing records
    byte-identical to an uninterrupted run. A corrupt checkpoint is
    discarded and the run restarts cleanly from sample 0.
    """
    if len(stream) == 0:
        raise DataValidationError("stream must be non-empty.")
    resumed_at: Optional[int] = None
    t0 = time.perf_counter()
    if checkpoint_path is None:
        if checkpoint_every is not None:
            raise DataValidationError(
                "checkpoint_every requires checkpoint_path."
            )
        records = pipeline.run(stream, chunk_size=chunk_size)
    else:
        ckpt = Path(checkpoint_path)
        every = 256 if checkpoint_every is None else int(checkpoint_every)
        if resume and ckpt.exists():
            try:
                records, resumed_at = _resume_with_position(
                    pipeline, stream, ckpt, chunk_size=chunk_size, checkpoint_every=every
                )
            except CheckpointCorruptError:
                remove_run_checkpoint(ckpt)
                records = pipeline.run(
                    stream,
                    chunk_size=chunk_size,
                    checkpoint_every=every,
                    checkpoint_path=ckpt,
                )
        else:
            records = pipeline.run(
                stream,
                chunk_size=chunk_size,
                checkpoint_every=every,
                checkpoint_path=ckpt,
            )
    wall = time.perf_counter() - t0
    return MethodResult(
        name=name or pipeline.name,
        records=records,
        accuracy=overall_accuracy(records),
        delay=delay_report(records, stream.drift_points),
        phase_tally=PhaseTally.from_records(records),
        wall_seconds=wall,
        detector_nbytes=pipeline.state_nbytes(),
        resumed_at=resumed_at,
    )


def compare_methods(
    builders: Mapping[str, Callable[[], StreamPipeline]],
    stream: DataStream,
    *,
    chunk_size: Optional[int] = None,
) -> Dict[str, MethodResult]:
    """Evaluate several freshly-built pipelines on the same stream.

    ``builders`` maps a display name to a zero-argument factory — each
    method gets its own model instance, as in the paper's five-way
    comparison (§4.2). For large (method × stream × seed) grids prefer
    :class:`repro.metrics.parallel.ParallelRunner`, which fans the cells
    over worker processes and caches results on disk.
    """
    results: Dict[str, MethodResult] = {}
    for name, build in builders.items():
        results[name] = evaluate_method(build(), stream, name=name, chunk_size=chunk_size)
    return results
