"""Experiment runner: one call per (method, stream) cell of the paper's tables.

:func:`evaluate_method` streams a :class:`DataStream` through a pipeline
and packages everything the tables need — accuracy, delays, phase tallies,
wall-clock time, memory — into a :class:`MethodResult`.
:func:`compare_methods` runs a whole method dictionary (e.g. the paper's
five configurations) over one stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from ..core.pipeline import StepRecord, StreamPipeline
from ..datasets.stream import DataStream
from ..device.timing import PhaseTally
from ..utils.exceptions import DataValidationError
from .accuracy import overall_accuracy, windowed_accuracy
from .delay import DelayReport, delay_report

__all__ = ["MethodResult", "evaluate_method", "compare_methods"]


@dataclass
class MethodResult:
    """Everything measured for one method on one stream."""

    name: str
    records: List[StepRecord]
    accuracy: float
    delay: DelayReport
    phase_tally: PhaseTally
    wall_seconds: float
    detector_nbytes: int

    @property
    def first_delay(self) -> Optional[int]:
        return self.delay.first_delay

    def accuracy_curve(self, window: int = 500) -> tuple[np.ndarray, np.ndarray]:
        """Moving-accuracy series for Figure-4-style plots."""
        return windowed_accuracy(self.records, window)

    def summary_row(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "method": self.name,
            "accuracy_pct": 100.0 * self.accuracy,
            "delay": self.first_delay,
            "false_positives": len(self.delay.false_positives),
            "wall_seconds": self.wall_seconds,
            "detector_kb": self.detector_nbytes / 1000.0,
        }


def evaluate_method(
    pipeline: StreamPipeline,
    stream: DataStream,
    *,
    name: Optional[str] = None,
    chunk_size: Optional[int] = None,
) -> MethodResult:
    """Run ``pipeline`` over ``stream`` and collect all metrics.

    ``chunk_size`` is forwarded to :meth:`StreamPipeline.run` (``None``
    keeps the pipeline's default vectorized chunking; ``1`` forces the
    per-sample reference path — records are identical either way).
    """
    if len(stream) == 0:
        raise DataValidationError("stream must be non-empty.")
    t0 = time.perf_counter()
    records = pipeline.run(stream, chunk_size=chunk_size)
    wall = time.perf_counter() - t0
    return MethodResult(
        name=name or pipeline.name,
        records=records,
        accuracy=overall_accuracy(records),
        delay=delay_report(records, stream.drift_points),
        phase_tally=PhaseTally.from_records(records),
        wall_seconds=wall,
        detector_nbytes=pipeline.state_nbytes(),
    )


def compare_methods(
    builders: Mapping[str, Callable[[], StreamPipeline]],
    stream: DataStream,
    *,
    chunk_size: Optional[int] = None,
) -> Dict[str, MethodResult]:
    """Evaluate several freshly-built pipelines on the same stream.

    ``builders`` maps a display name to a zero-argument factory — each
    method gets its own model instance, as in the paper's five-way
    comparison (§4.2). For large (method × stream × seed) grids prefer
    :class:`repro.metrics.parallel.ParallelRunner`, which fans the cells
    over worker processes and caches results on disk.
    """
    results: Dict[str, MethodResult] = {}
    for name, build in builders.items():
        results[name] = evaluate_method(build(), stream, name=name, chunk_size=chunk_size)
    return results
