"""Evaluation harness: accuracy, detection delay, runner, table rendering."""

from .accuracy import (
    correctness_array,
    overall_accuracy,
    segment_accuracy,
    windowed_accuracy,
)
from .ascii_plots import ascii_scatter, hbar_chart, sparkline
from .drift_eval import DriftEvaluation, evaluate_detections
from .delay import DelayReport, delay_report, detection_delay, detection_indices
from .parallel import (
    CellResult,
    CellSpec,
    ParallelExecutionError,
    ParallelRunner,
    ShardDiedError,
    ShardError,
    ShardPool,
    ShardTimeoutError,
    make_grid,
    run_cell,
)
from .runner import MethodResult, compare_methods, evaluate_method
from .tables import format_paper_comparison, format_table

__all__ = [
    "correctness_array",
    "overall_accuracy",
    "windowed_accuracy",
    "segment_accuracy",
    "sparkline",
    "hbar_chart",
    "ascii_scatter",
    "DriftEvaluation",
    "evaluate_detections",
    "DelayReport",
    "delay_report",
    "detection_delay",
    "detection_indices",
    "MethodResult",
    "evaluate_method",
    "compare_methods",
    "CellSpec",
    "CellResult",
    "ParallelRunner",
    "ParallelExecutionError",
    "ShardPool",
    "ShardError",
    "ShardDiedError",
    "ShardTimeoutError",
    "make_grid",
    "run_cell",
    "format_table",
    "format_paper_comparison",
]
