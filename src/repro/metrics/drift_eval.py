"""Standard drift-detection quality metrics beyond first-detection delay.

The drift-detection literature evaluates detectors with more than the
single delay number the paper reports; this module adds the standard set
so ablations can quantify trade-offs properly:

* **detection precision / recall** with a tolerance horizon: a true drift
  counts as detected if some detection lands within ``horizon`` samples
  after it; detections matching no drift are false alarms;
* **missed detection rate (MDR)** — fraction of true drifts never matched;
* **mean time to detection (MTD)** — average matched delay;
* **mean time between false alarms (MTFA)** — the stationary-stream
  robustness number (larger is better).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..utils.exceptions import DataValidationError
from ..utils.validation import check_positive

__all__ = ["DriftEvaluation", "evaluate_detections"]


@dataclass(frozen=True)
class DriftEvaluation:
    """Detection-quality summary for one run.

    Attributes
    ----------
    matched_delays:
        One entry per true drift: the delay of the first detection inside
        its tolerance horizon, or ``None`` if missed.
    false_alarms:
        Detections that matched no true drift.
    """

    matched_delays: tuple
    false_alarms: tuple
    n_samples: int

    @property
    def n_drifts(self) -> int:
        return len(self.matched_delays)

    @property
    def n_detected(self) -> int:
        return sum(1 for d in self.matched_delays if d is not None)

    @property
    def recall(self) -> float:
        """Fraction of true drifts detected within the horizon."""
        return self.n_detected / self.n_drifts if self.n_drifts else float("nan")

    @property
    def missed_detection_rate(self) -> float:
        """1 - recall (the MDR of the drift literature)."""
        return 1.0 - self.recall if self.n_drifts else float("nan")

    @property
    def precision(self) -> float:
        """Fraction of detections that matched a true drift."""
        total = self.n_detected + len(self.false_alarms)
        return self.n_detected / total if total else float("nan")

    @property
    def mean_time_to_detection(self) -> Optional[float]:
        """Average matched delay (MTD); ``None`` when nothing matched."""
        hits = [d for d in self.matched_delays if d is not None]
        return sum(hits) / len(hits) if hits else None

    @property
    def mean_time_between_false_alarms(self) -> Optional[float]:
        """Stream length divided by the false-alarm count (MTFA).

        ``None`` when the run produced no false alarms (ideal).
        """
        if not self.false_alarms:
            return None
        return self.n_samples / len(self.false_alarms)


def evaluate_detections(
    detections: Sequence[int],
    drift_points: Sequence[int],
    n_samples: int,
    *,
    horizon: int = 1000,
) -> DriftEvaluation:
    """Match detections to true drifts under a tolerance ``horizon``.

    Each true drift is matched greedily to the earliest unused detection
    in ``[drift, drift + horizon)`` (also clipped at the next drift point
    so one detection cannot be claimed by an earlier drift it followed
    past its successor). Unmatched detections are false alarms.
    """
    check_positive(n_samples, "n_samples")
    check_positive(horizon, "horizon")
    dets = sorted(int(d) for d in detections)
    drifts = sorted({int(d) for d in drift_points})  # dedupe degenerate input
    for d in dets:
        if not 0 <= d < n_samples:
            raise DataValidationError(f"detection index {d} outside the stream.")
    for d in drifts:
        if not 0 <= d < n_samples:
            raise DataValidationError(f"drift point {d} outside the stream.")

    used = [False] * len(dets)
    delays: list[Optional[int]] = []
    for i, dp in enumerate(drifts):
        end = min(dp + horizon, drifts[i + 1] if i + 1 < len(drifts) else n_samples)
        match = None
        for j, det in enumerate(dets):
            if used[j] or det < dp:
                continue
            if det >= end:
                break
            match = j
            break
        if match is not None:
            used[match] = True
            delays.append(dets[match] - dp)
        else:
            delays.append(None)
    false_alarms = tuple(det for j, det in enumerate(dets) if not used[j])
    return DriftEvaluation(tuple(delays), false_alarms, int(n_samples))
