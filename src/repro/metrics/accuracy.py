"""Accuracy metrics over streamed step records (Figure 4 / Table 2 inputs).

The paper evaluates the *discriminative model's* classification accuracy
over the test stream — overall (Table 2) and as a moving curve (Figure 4).
These helpers consume the :class:`~repro.core.pipeline.StepRecord` lists
produced by any pipeline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.pipeline import StepRecord
from ..utils.exceptions import DataValidationError
from ..utils.validation import check_positive

__all__ = [
    "correctness_array",
    "overall_accuracy",
    "windowed_accuracy",
    "segment_accuracy",
]


def correctness_array(records: Sequence[StepRecord]) -> np.ndarray:
    """Per-sample correctness (float 0/1) from a pipeline run.

    Raises when any record lacks ground truth — accuracy is undefined
    without labels.
    """
    if not records:
        raise DataValidationError("records must be non-empty.")
    out = np.empty(len(records))
    for i, rec in enumerate(records):
        if rec.correct is None:
            raise DataValidationError(
                f"record {i} has no ground-truth label; accuracy undefined."
            )
        out[i] = 1.0 if rec.correct else 0.0
    return out


def overall_accuracy(records: Sequence[StepRecord]) -> float:
    """Mean accuracy over the whole stream (Table 2's Accuracy column)."""
    return float(correctness_array(records).mean())


def windowed_accuracy(
    records: Sequence[StepRecord], window: int = 500
) -> tuple[np.ndarray, np.ndarray]:
    """Moving-average accuracy curve (Figure 4's series).

    Returns ``(positions, accuracy)`` where ``positions[i]`` is the stream
    index at the *end* of the i-th window. Uses a trailing window of
    ``window`` samples, evaluated at every sample from index ``window-1``.
    """
    check_positive(window, "window")
    c = correctness_array(records)
    if len(c) < window:
        raise DataValidationError(
            f"stream of {len(c)} samples is shorter than window {window}."
        )
    csum = np.concatenate([[0.0], np.cumsum(c)])
    acc = (csum[window:] - csum[:-window]) / window
    positions = np.arange(window - 1, len(c))
    return positions, acc


def segment_accuracy(
    records: Sequence[StepRecord], boundaries: Sequence[int]
) -> list[float]:
    """Accuracy per segment delimited by ``boundaries`` (e.g. drift points).

    ``boundaries=(8333,)`` yields ``[pre-drift acc, post-drift acc]``.
    """
    c = correctness_array(records)
    edges = [0, *sorted(int(b) for b in boundaries), len(c)]
    for a, b in zip(edges, edges[1:]):
        if not 0 <= a <= b <= len(c):
            raise DataValidationError(f"invalid boundary range [{a}, {b}).")
    return [float(c[a:b].mean()) if b > a else float("nan") for a, b in zip(edges, edges[1:])]
