"""Detection-delay metrics (Tables 2 and 3).

"The delay means the number of samples needed to detect a concept drift
after the concept drift actually happens." A detection is attributed to
the most recent true drift point at or before it; detections before the
first drift point are false positives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.pipeline import StepRecord
from ..utils.exceptions import DataValidationError

__all__ = ["DelayReport", "detection_indices", "detection_delay", "delay_report"]


def detection_indices(records: Sequence[StepRecord]) -> list[int]:
    """Stream indices at which the pipeline reported a drift."""
    return [rec.index for rec in records if rec.drift_detected]


def detection_delay(
    detections: Sequence[int], drift_point: int
) -> Optional[int]:
    """Samples from ``drift_point`` to the first detection at/after it.

    Returns ``None`` when no detection follows the drift (the "-" entries
    of Table 3).
    """
    if drift_point < 0:
        raise DataValidationError(f"drift_point must be >= 0, got {drift_point}.")
    later = [d for d in detections if d >= drift_point]
    return (min(later) - drift_point) if later else None


@dataclass(frozen=True)
class DelayReport:
    """Delays and false positives of one run against ground truth.

    Attributes
    ----------
    delays:
        One entry per true drift point: samples to the first detection in
        ``[drift_i, next_drift)`` or ``None`` if that window had none.
    false_positives:
        Detections strictly before the first true drift point.
    detections:
        All raw detection indices.
    """

    delays: tuple
    false_positives: tuple
    detections: tuple

    @property
    def first_delay(self) -> Optional[int]:
        """Delay for the first true drift (the number Tables 2-3 report)."""
        return self.delays[0] if self.delays else None


def delay_report(
    records: Sequence[StepRecord], drift_points: Sequence[int]
) -> DelayReport:
    """Match detections to true drift points segment by segment."""
    drifts = sorted(int(d) for d in drift_points)
    detections = detection_indices(records)
    fps = tuple(d for d in detections if drifts and d < drifts[0])
    delays = []
    for i, dp in enumerate(drifts):
        end = drifts[i + 1] if i + 1 < len(drifts) else float("inf")
        inside = [d for d in detections if dp <= d < end]
        delays.append(min(inside) - dp if inside else None)
    return DelayReport(tuple(delays), fps, tuple(detections))
