"""Plain-text table rendering matching the paper's table layouts.

The benchmark harness prints its reproduced tables through these helpers
so that ``bench_output.txt`` can be eyeballed against the paper directly.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..utils.exceptions import DataValidationError

__all__ = ["format_table", "format_paper_comparison"]


def _cell(value: object, width: int) -> str:
    if value is None:
        s = "-"
    elif isinstance(value, float):
        s = f"{value:.2f}"
    else:
        s = str(value)
    return s.rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    if not headers:
        raise DataValidationError("headers must be non-empty.")
    for r in rows:
        if len(r) != len(headers):
            raise DataValidationError(
                f"row {r!r} has {len(r)} cells, expected {len(headers)}."
            )
    str_rows = [
        [(_cell(v, 0).strip()) for v in row] for row in rows
    ]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_paper_comparison(
    title: str,
    measured: Mapping[str, object],
    paper: Mapping[str, object],
    *,
    unit: str = "",
) -> str:
    """Two-column measured-vs-paper table keyed by row label.

    Rows follow the paper mapping's order; measured values missing for a
    row render as '-'.
    """
    headers = ["row", f"reproduced{f' ({unit})' if unit else ''}", f"paper{f' ({unit})' if unit else ''}"]
    rows = [[k, measured.get(k), v] for k, v in paper.items()]
    return format_table(headers, rows, title=title)
