"""Crash-safe streaming: checkpoints, restore, and fault injection.

The paper's deployment story is month-long unattended runs on edge
hardware, where sequential state (centroids, RLS matrices, window
counters) is irrecoverable once lost. This package provides

* a versioned, checksummed, atomically-written checkpoint container
  (:mod:`repro.resilience.checkpoint`),
* an append-only record log that makes every-N run checkpointing
  O(interval), not O(history) (:mod:`repro.resilience.reclog`),
* a shared background writer that keeps container writes and fsyncs
  off the streaming hot path (:mod:`repro.resilience.writer`),
* state-tree and StepRecord codecs (:mod:`repro.resilience.state`), and
* a deterministic fault-injection harness
  (:mod:`repro.resilience.faults`)

on top of the uniform ``get_state()/set_state()`` protocol implemented
by every stateful component. ``StreamPipeline.run(checkpoint_every=...,
checkpoint_path=...)`` and ``StreamPipeline.resume(...)`` build on these
to make killed-and-resumed runs byte-identical to uninterrupted ones.
"""

from .checkpoint import (
    FORMAT_VERSION,
    MAGIC,
    Checkpoint,
    atomic_write_bytes,
    load_checkpoint,
    save_checkpoint,
)
from .faults import (
    InjectedCrash,
    corrupt_version,
    crash_at,
    dropout,
    feature_dead,
    flip_bit,
    nan_burst,
    spike_train,
    stuck_at,
    truncate_file,
)
from .reclog import (
    LOG_MAGIC,
    RecordLogWriter,
    read_record_log,
    record_log_path,
    remove_run_checkpoint,
)
from .state import (
    decode_records,
    encode_records,
    flatten_state,
    snapshot_state,
    state_arrays_nbytes,
    unflatten_state,
)
from .writer import AsyncCheckpointWriter, shared_writer

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "Checkpoint",
    "atomic_write_bytes",
    "save_checkpoint",
    "load_checkpoint",
    "InjectedCrash",
    "crash_at",
    "truncate_file",
    "flip_bit",
    "corrupt_version",
    "nan_burst",
    "stuck_at",
    "dropout",
    "spike_train",
    "feature_dead",
    "flatten_state",
    "unflatten_state",
    "snapshot_state",
    "encode_records",
    "decode_records",
    "state_arrays_nbytes",
    "AsyncCheckpointWriter",
    "shared_writer",
    "LOG_MAGIC",
    "RecordLogWriter",
    "read_record_log",
    "record_log_path",
    "remove_run_checkpoint",
]
