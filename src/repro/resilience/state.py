"""State-tree (de)serialisation for checkpoints.

A *state tree* is whatever a component's ``get_state()`` returns: nested
dicts/lists/tuples of builtins plus ``numpy.ndarray`` leaves. The
checkpoint container stores the tree as JSON, which cannot hold raw
arrays, so :func:`flatten_state` swaps every array for a small
placeholder dict and collects the arrays into a separate name → array
mapping (written as the container's binary array payload);
:func:`unflatten_state` reverses the substitution on load.

:func:`encode_records` / :func:`decode_records` do the same for lists of
``StepRecord`` — stored column-wise as typed arrays so that ``float64``
anomaly scores round-trip bit-exactly and a resumed run can prepend the
already-produced records byte-for-byte.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..utils.exceptions import ConfigurationError

__all__ = [
    "flatten_state",
    "unflatten_state",
    "snapshot_state",
    "encode_records",
    "decode_records",
    "state_arrays_nbytes",
]

_ARRAY_KEY = "__ndarray__"
_TUPLE_KEY = "__tuple__"


def _flatten(node: Any, arrays: Dict[str, np.ndarray]) -> Any:
    if isinstance(node, np.ndarray):
        name = f"a{len(arrays)}"
        arrays[name] = node
        return {_ARRAY_KEY: name}
    if isinstance(node, dict):
        if _ARRAY_KEY in node or _TUPLE_KEY in node:
            raise ConfigurationError(
                f"state dict may not use reserved key {_ARRAY_KEY!r}/{_TUPLE_KEY!r}"
            )
        return {str(k): _flatten(v, arrays) for k, v in node.items()}
    if isinstance(node, tuple):
        return {_TUPLE_KEY: [_flatten(v, arrays) for v in node]}
    if isinstance(node, list):
        return [_flatten(v, arrays) for v in node]
    if isinstance(node, np.generic):  # np.float64, np.int64, np.bool_, ...
        return node.item()
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    raise TypeError(f"unsupported type in state tree: {type(node).__name__}")


def flatten_state(state: Any) -> Tuple[Any, Dict[str, np.ndarray]]:
    """Replace ndarray leaves with placeholders; return (tree, arrays)."""
    arrays: Dict[str, np.ndarray] = {}
    return _flatten(state, arrays), arrays


def unflatten_state(tree: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Reverse :func:`flatten_state` using the saved array mapping."""
    if isinstance(tree, dict):
        if _ARRAY_KEY in tree:
            return arrays[tree[_ARRAY_KEY]]
        if _TUPLE_KEY in tree:
            return tuple(unflatten_state(v, arrays) for v in tree[_TUPLE_KEY])
        return {k: unflatten_state(v, arrays) for k, v in tree.items()}
    if isinstance(tree, list):
        return [unflatten_state(v, arrays) for v in tree]
    return tree


def snapshot_state(state: Any) -> Any:
    """Deep-copy a state tree (every ndarray leaf copied).

    Used to hand a consistent snapshot to the asynchronous checkpoint
    writer while the live component keeps mutating its arrays in place.
    """
    tree, arrays = flatten_state(state)
    return unflatten_state(tree, {k: np.array(v, copy=True) for k, v in arrays.items()})


def state_arrays_nbytes(state: Any) -> int:
    """Total bytes of every ndarray leaf in a state tree."""
    _, arrays = flatten_state(state)
    return int(sum(a.nbytes for a in arrays.values()))


# --------------------------------------------------------------------------
# StepRecord column-wise codec
# --------------------------------------------------------------------------


def _encode_columns(
    records: List[Any], seen: Dict[str, int], vocab: List[str]
) -> Dict[str, np.ndarray]:
    """Column arrays for ``records``; extends ``seen``/``vocab`` in place."""
    n = len(records)
    index = np.fromiter((r.index for r in records), dtype=np.int64, count=n)
    predicted = np.fromiter((r.predicted for r in records), dtype=np.int64, count=n)
    true_label = np.fromiter(
        (-1 if r.true_label is None else r.true_label for r in records),
        dtype=np.int64,
        count=n,
    )
    true_none = np.fromiter(
        (r.true_label is None for r in records), dtype=np.bool_, count=n
    )
    correct = np.fromiter(
        (-1 if r.correct is None else int(r.correct) for r in records),
        dtype=np.int8,
        count=n,
    )
    anomaly_score = np.fromiter(
        (r.anomaly_score for r in records), dtype=np.float64, count=n
    )
    drift = np.fromiter((r.drift_detected for r in records), dtype=np.bool_, count=n)
    recon = np.fromiter((r.reconstructing for r in records), dtype=np.bool_, count=n)

    codes = np.empty(n, dtype=np.int64)
    for i, r in enumerate(records):
        code = seen.get(r.phase)
        if code is None:
            code = seen[r.phase] = len(vocab)
            vocab.append(r.phase)
        codes[i] = code

    return {
        "index": index,
        "predicted": predicted,
        "true_label": true_label,
        "true_none": true_none,
        "correct": correct,
        "anomaly_score": anomaly_score,
        "drift_detected": drift,
        "reconstructing": recon,
        "phase_codes": codes,
    }


def encode_records(records: List[Any]) -> Dict[str, Any]:
    """Serialise StepRecords column-wise with exact dtype round-trips.

    ``true_label``/``correct`` may be ``None`` on unlabeled streams, so
    they carry a sentinel (-1 in an int8/int64 column plus a mask).
    ``phase`` strings are stored as a vocabulary list + integer codes.
    """
    vocab: List[str] = []
    seen: Dict[str, int] = {}
    cols = _encode_columns(records, seen, vocab)
    return {**cols, "phase_vocab": vocab}


def decode_records(encoded: Dict[str, Any]) -> List[Any]:
    """Rebuild the StepRecord list from :func:`encode_records` output."""
    from repro.core.pipeline import StepRecord  # lazy: avoid core <-> resilience cycle

    vocab = list(encoded["phase_vocab"])
    index = encoded["index"]
    predicted = encoded["predicted"]
    true_label = encoded["true_label"]
    true_none = encoded["true_none"]
    correct = encoded["correct"]
    anomaly_score = encoded["anomaly_score"]
    drift = encoded["drift_detected"]
    recon = encoded["reconstructing"]
    codes = encoded["phase_codes"]

    records = []
    for i in range(len(index)):
        c = int(correct[i])
        records.append(
            StepRecord(
                index=int(index[i]),
                predicted=int(predicted[i]),
                true_label=None if bool(true_none[i]) else int(true_label[i]),
                correct=None if c < 0 else bool(c),
                anomaly_score=float(anomaly_score[i]),
                drift_detected=bool(drift[i]),
                reconstructing=bool(recon[i]),
                phase=vocab[int(codes[i])],
            )
        )
    return records
