"""Background checkpoint writer — keeps fsync latency off the hot path.

A durable checkpoint save (flatten + pack + sha256 + fsync'd atomic
write) costs milliseconds of *wall* time — almost all of it waiting on
``fsync`` — which dwarfs the per-sample cost of a pure-predict streaming
loop. :class:`AsyncCheckpointWriter` moves that waiting onto one worker
thread so the stream loop only pays for a state *snapshot* (array
copies, microseconds). Cheap work (record-log block appends, which
flush but never fsync) stays inline on the caller's thread: on a
single-core device a thread wake-up costs more than the append itself.

Semantics that keep crash recovery deterministic:

* **Strict FIFO.** Tasks run in submission order, none are dropped —
  so a log-fsync task submitted before a state-container task is
  durable first, which is what the record log's epoch trust rule
  requires. Anything the caller wrote inline *before* ``submit`` is
  ordered before the task by program order.
* **Drain on exit.** :meth:`flush` runs every queued task before
  returning, and the stream loop flushes on *both* normal completion
  and crash — so when ``run()``/``resume()`` returns or raises,
  everything submitted is on disk. Callers may unlink or load the
  checkpoint immediately without racing the worker. ``flush(scope=...)``
  waits only for that scope's tasks (FIFO ordering means everything
  submitted before them has already run).
* **Errors surface — per scope.** The writer is shared by every
  pipeline in the process (see :func:`shared_writer`), so a failure is
  tracked against the ``scope`` its task was submitted under and
  re-raised only at that scope's next ``submit``/``flush`` — one
  session's disk-full can never surface inside an unrelated session.
  After a failure, only the *failing scope's* later tasks are skipped;
  other scopes keep writing. Scope-less calls share one default scope
  (the historical single-client behaviour), and a bare ``flush()`` /
  ``close()`` drains everything and re-raises the oldest pending error
  of any scope so no failure is ever silently dropped.

The process shares one lazily-started worker via :func:`shared_writer`
— thread start/join costs a visible fraction of a short run, so it is
paid once, not per run. The shared worker is re-created transparently
if the previous one died (e.g. in a forked worker process, which
inherits the parent's writer object but not its thread).

Tasks run on the worker thread: they must only touch data the caller
no longer mutates (isolated ``get_state()`` snapshots, immutable
``StepRecord`` lists, file descriptors that stay open until after
``flush``).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, Hashable, Optional, Tuple

__all__ = ["AsyncCheckpointWriter", "shared_writer"]

#: Default for ``flush``: drain every scope, not one in particular.
_ALL_SCOPES = object()


class AsyncCheckpointWriter:
    """Single worker thread running checkpoint tasks in strict FIFO order.

    ``scope`` on :meth:`submit`/:meth:`flush` is any hashable key naming
    the client (a run's checkpoint interceptor, a fleet session, ...).
    Task failures are remembered and re-raised per scope, so independent
    clients sharing the process-wide writer cannot observe each other's
    errors. Omitting the scope uses one shared default scope.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._wake = threading.Event()
        self._queue: Deque[Tuple[Hashable, Callable[[], None]]] = deque()
        #: scope → tasks submitted but not yet finished (queued or running)
        self._pending: Dict[Hashable, int] = {}
        #: scope → first unraised failure, in failure order (dicts are ordered)
        self._errors: Dict[Hashable, BaseException] = {}
        self._busy = False
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name="repro-checkpoint-writer", daemon=True
        )
        self._thread.start()

    # -- caller side -----------------------------------------------------------------

    def submit(self, task: Callable[[], None], *, scope: Hashable = None) -> None:
        """Queue one task; it runs on the worker after all earlier tasks.

        Raises the scope's pending error first, if one of its earlier
        tasks failed (the error is consumed; the scope is then usable
        again).
        """
        with self._lock:
            self._raise_scope_error(scope)
            if self._closed:
                raise RuntimeError("AsyncCheckpointWriter is closed.")
            self._queue.append((scope, task))
            self._pending[scope] = self._pending.get(scope, 0) + 1
            self._wake.set()

    def flush(self, *, scope: Hashable = _ALL_SCOPES) -> None:
        """Block until the scope's submitted tasks have run (default: all).

        With an explicit ``scope``, waits only for that scope's tasks and
        re-raises only that scope's pending error. Without one, drains
        the whole queue and re-raises the oldest pending error of *any*
        scope (the historical single-client contract).
        """
        with self._idle:
            if scope is _ALL_SCOPES:
                while self._queue or self._busy:
                    self._idle.wait()
                self._raise_any_error()
            else:
                while self._pending.get(scope, 0):
                    self._idle.wait()
                self._raise_scope_error(scope)

    def close(self) -> None:
        """Drain the queue, stop the worker, and surface any task error."""
        with self._lock:
            self._closed = True
            self._wake.set()
        self._thread.join()
        with self._lock:
            self._raise_any_error()

    def __enter__(self) -> "AsyncCheckpointWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            # Still drain (landing the newest checkpoint), but never mask
            # the in-flight exception with a writer error.
            try:
                self.close()
            except Exception:
                pass

    def _raise_scope_error(self, scope: Hashable) -> None:
        exc = self._errors.pop(scope, None)
        if exc is not None:
            raise exc

    def _raise_any_error(self) -> None:
        if self._errors:
            scope = next(iter(self._errors))
            raise self._errors.pop(scope)

    # -- worker side -----------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            self._wake.wait()
            with self._lock:
                if not self._queue:
                    if self._closed:
                        self._idle.notify_all()
                        return
                    self._wake.clear()
                    continue
                scope, task = self._queue.popleft()
                self._busy = True
                # Skip only the *failing scope's* backlog — its on-disk
                # state is suspect after one failed write, but every other
                # scope's tasks are independent and keep running.
                skip = scope in self._errors
            try:
                if not skip:
                    task()
            except BaseException as exc:  # surfaced on the scope's next call
                with self._lock:
                    if scope not in self._errors:
                        self._errors[scope] = exc
            finally:
                with self._lock:
                    self._busy = False
                    n = self._pending.get(scope, 0) - 1
                    if n > 0:
                        self._pending[scope] = n
                    else:
                        self._pending.pop(scope, None)
                    self._idle.notify_all()


_shared_lock = threading.Lock()
_shared: Optional[AsyncCheckpointWriter] = None


def shared_writer() -> AsyncCheckpointWriter:
    """The process-wide checkpoint writer (created on first use).

    Callers scope their use with :meth:`AsyncCheckpointWriter.flush`
    rather than ``close`` — the worker thread outlives any one run — and
    should pass a per-client ``scope`` to ``submit``/``flush`` so their
    failures stay theirs. A dead worker (closed by a test, or inherited
    across ``fork``) is replaced transparently.
    """
    global _shared
    with _shared_lock:
        if (
            _shared is None
            or _shared._closed
            or not _shared._thread.is_alive()
        ):
            _shared = AsyncCheckpointWriter()
        return _shared
