"""Background checkpoint writer — keeps fsync latency off the hot path.

A durable checkpoint save (flatten + pack + sha256 + fsync'd atomic
write) costs milliseconds of *wall* time — almost all of it waiting on
``fsync`` — which dwarfs the per-sample cost of a pure-predict streaming
loop. :class:`AsyncCheckpointWriter` moves that waiting onto one worker
thread so the stream loop only pays for a state *snapshot* (array
copies, microseconds). Cheap work (record-log block appends, which
flush but never fsync) stays inline on the caller's thread: on a
single-core device a thread wake-up costs more than the append itself.

Semantics that keep crash recovery deterministic:

* **Strict FIFO.** Tasks run in submission order, none are dropped —
  so a log-fsync task submitted before a state-container task is
  durable first, which is what the record log's epoch trust rule
  requires. Anything the caller wrote inline *before* ``submit`` is
  ordered before the task by program order.
* **Drain on exit.** :meth:`flush` runs every queued task before
  returning, and the stream loop flushes on *both* normal completion
  and crash — so when ``run()``/``resume()`` returns or raises,
  everything submitted is on disk. Callers may unlink or load the
  checkpoint immediately without racing the worker.
* **Errors surface.** A failure on the worker (disk full, permission)
  is re-raised on the caller's thread at the next ``submit``/``flush``/
  ``close``; later tasks are skipped once one has failed.

The process shares one lazily-started worker via :func:`shared_writer`
— thread start/join costs a visible fraction of a short run, so it is
paid once, not per run. The shared worker is re-created transparently
if the previous one died (e.g. in a forked worker process, which
inherits the parent's writer object but not its thread).

Tasks run on the worker thread: they must only touch data the caller
no longer mutates (isolated ``get_state()`` snapshots, immutable
``StepRecord`` lists, file descriptors that stay open until after
``flush``).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Optional

__all__ = ["AsyncCheckpointWriter", "shared_writer"]


class AsyncCheckpointWriter:
    """Single worker thread running checkpoint tasks in strict FIFO order."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._wake = threading.Event()
        self._queue: Deque[Callable[[], None]] = deque()
        self._busy = False
        self._closed = False
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._loop, name="repro-checkpoint-writer", daemon=True
        )
        self._thread.start()

    # -- caller side -----------------------------------------------------------------

    def submit(self, task: Callable[[], None]) -> None:
        """Queue one task; it runs on the worker after all earlier tasks."""
        with self._lock:
            self._raise_pending_error()
            if self._closed:
                raise RuntimeError("AsyncCheckpointWriter is closed.")
            self._queue.append(task)
            self._wake.set()

    def flush(self) -> None:
        """Block until every task submitted so far has run."""
        with self._idle:
            while self._queue or self._busy:
                self._idle.wait()
            self._raise_pending_error()

    def close(self) -> None:
        """Drain the queue, stop the worker, and surface any task error."""
        with self._lock:
            self._closed = True
            self._wake.set()
        self._thread.join()
        with self._lock:
            self._raise_pending_error()

    def __enter__(self) -> "AsyncCheckpointWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            # Still drain (landing the newest checkpoint), but never mask
            # the in-flight exception with a writer error.
            try:
                self.close()
            except Exception:
                pass

    def _raise_pending_error(self) -> None:
        if self._error is not None:
            exc, self._error = self._error, None
            raise exc

    # -- worker side -----------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            self._wake.wait()
            with self._lock:
                if not self._queue:
                    if self._closed:
                        self._idle.notify_all()
                        return
                    self._wake.clear()
                    continue
                task = self._queue.popleft()
                self._busy = True
            try:
                if self._error is None:  # skip the backlog after a failure
                    task()
            except BaseException as exc:  # surfaced on the caller's thread
                with self._lock:
                    if self._error is None:
                        self._error = exc
            finally:
                with self._lock:
                    self._busy = False
                    self._idle.notify_all()


_shared_lock = threading.Lock()
_shared: Optional[AsyncCheckpointWriter] = None


def shared_writer() -> AsyncCheckpointWriter:
    """The process-wide checkpoint writer (created on first use).

    Callers scope their use with :meth:`AsyncCheckpointWriter.flush`
    rather than ``close`` — the worker thread outlives any one run. A
    dead worker (closed by a test, or inherited across ``fork``) is
    replaced transparently.
    """
    global _shared
    with _shared_lock:
        if (
            _shared is None
            or _shared._closed
            or not _shared._thread.is_alive()
        ):
            _shared = AsyncCheckpointWriter()
        return _shared
