"""Append-only record log — the incremental half of a run checkpoint.

A checkpointed ``StreamPipeline.run`` writes two files:

* ``<path>`` — the atomic state container (:mod:`.checkpoint`), holding
  the pipeline state, position, and the log *epoch* (see below). It is
  rewritten only when adaptive state actually changed; for a frozen
  baseline that is once per run.
* ``<path>.log`` — this file: ``LOG_MAGIC`` then a sequence of blocks,
  one per persisted span (one or more checkpoint intervals — clean
  intervals are deferred and batched), each holding the span's
  ``StepRecord``s packed as fixed-width structs (bit-exact ``float64``
  scores) plus a block-local phase vocabulary::

      block = uint64-LE body length | sha256(body) | body
      body  = uint64 start index | uint32 epoch | uint32 n_records
              | uint16 vocab count | (uint16 len + utf-8 phase)*
              | n_records × record struct

Appending a span costs O(span) — the state container never
re-serialises old records — which is what keeps every-N checkpointing
affordable on the streaming hot path.

**Trust rule.** Each state-container write bumps an epoch counter; a
block written in the same save as a state rewrite carries the *new*
epoch and is appended *before* the container. On resume, blocks are
trusted while they are checksum-valid, index-contiguous, and carry an
epoch ≤ the container's: a crash between block append and container
write leaves a higher-epoch tail that is silently discarded (the state
on disk predates the mutation that block spans), and a torn or
bit-flipped tail fails its checksum. Clean blocks appended *after* the
container write extend the resume position past the container's —
valid because an interval only skips the state rewrite when the
pipeline proved nothing but its sample counter changed.

Appends are buffered in user space (one large buffer, so an append is
a memcpy, not a syscall) and explicitly flushed to the OS before any
fsync or state-container task is queued, and on close. A crash that
unwinds the Python stack (fault injection, an exception) therefore
loses nothing — ``close`` runs and flushes; a hard ``SIGKILL``/power
cut may lose the buffered tail, in which case resume falls back to the
last surviving block — never past a state container, which is only
ever written after the log covering its position was flushed (and,
when the pipeline opts into ``checkpoint_durable``, fsynced).
"""

from __future__ import annotations

import os
import struct
from hashlib import sha256
from pathlib import Path
from typing import Any, List, Optional, Tuple, Union

__all__ = [
    "LOG_MAGIC",
    "RecordLogWriter",
    "read_record_log",
    "record_log_path",
    "remove_run_checkpoint",
]

#: File magic: "RePRo rESilience record LoG", revision 1.
LOG_MAGIC = b"RPRESLG1"

_DIGEST_LEN = 32
_BLOCK_LEN = struct.Struct("<Q")
_BODY_HDR = struct.Struct("<QII")  # start index, epoch, n_records
_VOCAB_LEN = struct.Struct("<H")
#: index, predicted, true_label, correct, true_none, drift, recon, phase, score
_REC = struct.Struct("<qqqbb??Bd")


def record_log_path(path: Union[str, Path]) -> Path:
    """The sidecar log for a run-checkpoint state container at ``path``."""
    path = Path(path)
    return path.with_name(path.name + ".log")


def remove_run_checkpoint(path: Union[str, Path]) -> None:
    """Delete a run checkpoint — the state container and its record log."""
    path = Path(path)
    path.unlink(missing_ok=True)
    record_log_path(path).unlink(missing_ok=True)


def _encode_block(records: List[Any], start_index: int, epoch: int) -> bytes:
    vocab: List[str] = []
    seen = {}
    pack = _REC.pack
    out = bytearray()
    for r in records:
        code = seen.get(r.phase)
        if code is None:
            code = seen[r.phase] = len(vocab)
            vocab.append(r.phase)
        tl = r.true_label
        out += pack(
            r.index,
            r.predicted,
            -1 if tl is None else tl,
            -1 if r.correct is None else r.correct,
            tl is None,
            r.drift_detected,
            r.reconstructing,
            code,
            r.anomaly_score,
        )
    head = bytearray(_BODY_HDR.pack(start_index, epoch, len(records)))
    head += _VOCAB_LEN.pack(len(vocab))
    for phase in vocab:
        raw = phase.encode("utf-8")
        head += _VOCAB_LEN.pack(len(raw))
        head += raw
    return bytes(head + out)


def _decode_body(body: memoryview) -> Tuple[int, int, List[Any]]:
    """(start_index, epoch, records) for one checksum-valid block body."""
    from repro.core.pipeline import StepRecord  # lazy: core <-> resilience cycle

    start, epoch, n = _BODY_HDR.unpack_from(body, 0)
    off = _BODY_HDR.size
    (vcount,) = _VOCAB_LEN.unpack_from(body, off)
    off += _VOCAB_LEN.size
    vocab: List[str] = []
    for _ in range(vcount):
        (vlen,) = _VOCAB_LEN.unpack_from(body, off)
        off += _VOCAB_LEN.size
        vocab.append(bytes(body[off : off + vlen]).decode("utf-8"))
        off += vlen
    if len(body) - off != n * _REC.size:
        raise ValueError("block body length does not match record count")
    records: List[Any] = []
    for tup in _REC.iter_unpack(body[off:]):
        index, predicted, true_label, correct, true_none, drift, recon, code, score = tup
        records.append(
            StepRecord(
                index=index,
                predicted=predicted,
                true_label=None if true_none else true_label,
                correct=None if correct < 0 else bool(correct),
                anomaly_score=score,
                drift_detected=drift,
                reconstructing=recon,
                phase=vocab[code],
            )
        )
    return int(start), int(epoch), records


class RecordLogWriter:
    """Appends record blocks to a log file from the checkpoint worker.

    With ``trusted_bytes=None`` the file is created fresh (truncating
    any previous run's log); otherwise — the resume path — the file is
    truncated to the trusted prefix so discarded tail blocks from the
    interrupted run can never resurface.
    """

    #: user-space write buffer: appends are memcpys until :meth:`flush`
    _BUFFERING = 1 << 20

    def __init__(
        self, path: Union[str, Path], *, trusted_bytes: Optional[int] = None
    ) -> None:
        self.path = Path(path)
        if trusted_bytes is None or trusted_bytes < len(LOG_MAGIC):
            # Fresh log — also the resume path when the old log was
            # missing or had no readable magic (trusted prefix empty).
            self._fh = open(self.path, "wb", buffering=self._BUFFERING)
            self._fh.write(LOG_MAGIC)
        else:
            self._fh = open(self.path, "r+b", buffering=self._BUFFERING)
            self._fh.truncate(trusted_bytes)
            self._fh.seek(trusted_bytes)

    def append(self, records: List[Any], *, start_index: int, epoch: int) -> None:
        """Buffer one block (flushed by :meth:`flush`/:meth:`close`)."""
        body = _encode_block(records, start_index, epoch)
        self._fh.write(_BLOCK_LEN.pack(len(body)))
        self._fh.write(sha256(body).digest())
        self._fh.write(body)

    def flush(self) -> None:
        """Push buffered blocks to the OS (appending thread only)."""
        self._fh.flush()

    def sync(self) -> None:
        """fsync the file descriptor (does *not* drain the user-space
        buffer — the appending thread must :meth:`flush` first, which is
        why the pipeline flushes before queueing any sync/container
        task). Safe to call from the writer thread concurrently with
        appends."""
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        self._fh.close()


def read_record_log(
    path: Union[str, Path], *, max_epoch: int, start_index: int = 0
) -> Tuple[List[Any], int]:
    """Decode the trusted prefix of a record log.

    Returns ``(records, trusted_bytes)``. Reading stops — without
    raising — at the first torn, checksum-invalid, non-contiguous,
    epoch-regressing, or higher-than-``max_epoch`` block; whether the
    surviving prefix is *sufficient* is the caller's judgement (it knows
    the state container's position). A missing log reads as empty.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError:
        return [], 0
    if raw[: len(LOG_MAGIC)] != LOG_MAGIC:
        return [], 0
    records: List[Any] = []
    offset = len(LOG_MAGIC)
    next_index = start_index
    last_epoch = 0
    while True:
        header_end = offset + _BLOCK_LEN.size + _DIGEST_LEN
        if len(raw) < header_end:
            break
        (body_len,) = _BLOCK_LEN.unpack_from(raw, offset)
        body_end = header_end + body_len
        if len(raw) < body_end:
            break
        digest = raw[offset + _BLOCK_LEN.size : header_end]
        body = memoryview(raw)[header_end:body_end]
        if sha256(body).digest() != digest:
            break
        try:
            start, epoch, block_records = _decode_body(body)
        except Exception:
            break
        if start != next_index or epoch < last_epoch or epoch > max_epoch:
            break
        records.extend(block_records)
        next_index += len(block_records)
        last_epoch = epoch
        offset = body_end
    return records, offset
