"""Versioned, checksummed, atomically-written checkpoint container.

On-disk layout (single file)::

    MAGIC (8 bytes)  |  sha256(body) (32 bytes)  |  body

    body = uint64-LE header length | header JSON (UTF-8) | array payload

The header JSON carries ``format_version``, the writing library version,
a caller-chosen ``kind`` tag, free-form ``meta``, and the flattened
state tree (ndarray leaves replaced by placeholders into the array
payload; see :mod:`repro.resilience.state`). The payload is a flat
name/dtype/shape/raw-bytes concatenation rather than an ``.npz``:
zipfile framing costs ~1 ms of pure-Python work per save, which is most
of a checkpoint budget on the streaming hot path, and buys nothing here
because the whole body is already checksummed. The single digest over
the body means any truncation or bit flip — header or arrays — is
detected before *any* state is handed back to the caller, so a corrupt
file can never partially restore a component.

Writes go through :func:`atomic_write_bytes` (same-directory temp file,
``fsync``, ``os.replace``): a crash mid-save leaves either the previous
checkpoint or none, never a torn file at the target path.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from ..telemetry import get_telemetry
from ..utils.exceptions import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointVersionError,
)
from .state import flatten_state, unflatten_state

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "Checkpoint",
    "atomic_write_bytes",
    "save_checkpoint",
    "load_checkpoint",
]

#: File magic: "RePRo rESilience ChecKpoint", container revision 1.
MAGIC = b"RPRESCK1"
#: Header/payload layout revision. Bump on incompatible layout changes.
FORMAT_VERSION = 1

_DIGEST_LEN = 32
_LEN_FMT = "<Q"


@dataclass
class Checkpoint:
    """A fully validated checkpoint, as returned by :func:`load_checkpoint`."""

    kind: str
    meta: Dict[str, Any]
    state: Any
    format_version: int
    repro_version: str
    path: Path


def atomic_write_bytes(path: Union[str, Path], data: bytes, *, durable: bool = True) -> Path:
    """Write ``data`` to ``path`` atomically (tmp + fsync + rename).

    The temp file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename — atomic on POSIX. The
    directory entry itself is fsynced best-effort (not all platforms
    allow opening directories).

    ``durable=False`` skips both fsyncs: the replace is still atomic
    and the result still survives any *process* crash (the page cache
    belongs to the kernel), but a power cut may lose or tear it — in
    which case the checksum frame makes the damage detectable rather
    than silent. Run checkpoints on the streaming hot path use this;
    explicit model exports keep the default.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        if durable:
            fh.flush()
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if not durable:
        return path
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return path
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)
    return path


_ARRAY_HDR_FMT = "<III"  # name length, dtype-string length, ndim


def _pack_arrays(arrays: Dict[str, np.ndarray]) -> bytes:
    parts = [struct.pack("<I", len(arrays))]
    for name, a in arrays.items():
        a = np.ascontiguousarray(a)
        name_b = name.encode("utf-8")
        dtype_b = a.dtype.str.encode("ascii")
        parts.append(struct.pack(_ARRAY_HDR_FMT, len(name_b), len(dtype_b), a.ndim))
        parts.append(name_b)
        parts.append(dtype_b)
        parts.append(struct.pack(f"<{a.ndim}q", *a.shape))
        raw = a.tobytes()
        parts.append(struct.pack("<Q", len(raw)))
        parts.append(raw)
    return b"".join(parts)


def _unpack_arrays(buf: bytes) -> Dict[str, np.ndarray]:
    mv = memoryview(buf)
    (count,) = struct.unpack_from("<I", mv, 0)
    off = 4
    arrays: Dict[str, np.ndarray] = {}
    for _ in range(count):
        name_len, dtype_len, ndim = struct.unpack_from(_ARRAY_HDR_FMT, mv, off)
        off += struct.calcsize(_ARRAY_HDR_FMT)
        name = bytes(mv[off : off + name_len]).decode("utf-8")
        off += name_len
        dtype = np.dtype(bytes(mv[off : off + dtype_len]).decode("ascii"))
        off += dtype_len
        shape = struct.unpack_from(f"<{ndim}q", mv, off)
        off += 8 * ndim
        (nbytes,) = struct.unpack_from("<Q", mv, off)
        off += 8
        if off + nbytes > len(buf):
            raise ValueError(f"array {name!r} extends past payload end")
        # .copy(): own, writable data — set_state may update arrays in place.
        arrays[name] = (
            np.frombuffer(mv[off : off + nbytes], dtype=dtype).reshape(shape).copy()
        )
        off += nbytes
    if off != len(buf):
        raise ValueError(f"{len(buf) - off} trailing bytes after last array")
    return arrays


def _pack_body(header: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> bytes:
    header_bytes = json.dumps(header).encode("utf-8")
    payload = _pack_arrays(arrays)
    return struct.pack(_LEN_FMT, len(header_bytes)) + header_bytes + payload


def _frame(body: bytes) -> bytes:
    return MAGIC + sha256(body).digest() + body


def save_checkpoint(
    path: Union[str, Path],
    state: Any,
    *,
    kind: str,
    meta: Optional[Dict[str, Any]] = None,
    durable: bool = True,
) -> Path:
    """Serialise a state tree to ``path`` atomically; returns the path.

    ``durable`` is forwarded to :func:`atomic_write_bytes` — pass
    ``False`` to trade power-cut durability for an fsync-free save.
    """
    from .. import __version__

    tree, arrays = flatten_state(state)
    header = {
        "format_version": FORMAT_VERSION,
        "repro_version": __version__,
        "kind": str(kind),
        "meta": dict(meta or {}),
        "state": tree,
    }
    path = atomic_write_bytes(path, _frame(_pack_body(header, arrays)), durable=durable)
    tel = get_telemetry()
    if tel.enabled:
        tel.registry.counter("checkpoint.saves", "checkpoint files written").inc()
        tel.emit("checkpoint_saved", path=str(path), kind=str(kind))
    return path


def _corrupt(path: Path, reason: str) -> CheckpointCorruptError:
    tel = get_telemetry()
    if tel.enabled:
        tel.registry.counter(
            "checkpoint.corrupt", "checkpoint loads refused as corrupt"
        ).inc()
        tel.emit("checkpoint_corrupt", path=str(path), reason=reason)
    return CheckpointCorruptError(f"checkpoint {path}: {reason}")


def load_checkpoint(
    path: Union[str, Path], *, expected_kind: Optional[str] = None
) -> Checkpoint:
    """Read and fully validate a checkpoint file.

    Every integrity check — magic, digest, JSON, format version, array
    decode — happens *before* any state is returned, so callers can pass
    the resulting tree straight into ``set_state`` knowing a corrupt
    file never mutates in-memory objects.

    Raises
    ------
    CheckpointCorruptError
        Truncated, bit-flipped, or otherwise unreadable file.
    CheckpointVersionError
        Intact file written with an incompatible ``format_version``.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"checkpoint {path}: cannot read file ({exc})") from exc
    if len(raw) < len(MAGIC) + _DIGEST_LEN:
        raise _corrupt(path, f"file too short ({len(raw)} bytes)")
    if raw[: len(MAGIC)] != MAGIC:
        raise _corrupt(path, "bad magic (not a repro checkpoint)")
    digest = raw[len(MAGIC) : len(MAGIC) + _DIGEST_LEN]
    body = raw[len(MAGIC) + _DIGEST_LEN :]
    if sha256(body).digest() != digest:
        raise _corrupt(path, "checksum mismatch (truncated or bit-flipped)")

    header_len_size = struct.calcsize(_LEN_FMT)
    if len(body) < header_len_size:
        raise _corrupt(path, "body too short for header length")
    (header_len,) = struct.unpack(_LEN_FMT, body[:header_len_size])
    header_end = header_len_size + header_len
    if len(body) < header_end:
        raise _corrupt(path, "body too short for declared header")
    try:
        header = json.loads(body[header_len_size:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _corrupt(path, f"header is not valid JSON ({exc})") from exc
    if not isinstance(header, dict) or "format_version" not in header:
        raise _corrupt(path, "header missing required fields")

    version = header["format_version"]
    if version != FORMAT_VERSION:
        tel = get_telemetry()
        if tel.enabled:
            tel.registry.counter(
                "checkpoint.corrupt", "checkpoint loads refused as corrupt"
            ).inc()
            tel.emit(
                "checkpoint_corrupt", path=str(path), reason=f"format_version {version}"
            )
        raise CheckpointVersionError(
            f"checkpoint {path}: format_version {version} is not supported "
            f"(this library reads version {FORMAT_VERSION})"
        )

    try:
        arrays = _unpack_arrays(body[header_end:])
    except Exception as exc:  # struct/dtype/reshape errors are not one type
        raise _corrupt(path, f"array payload unreadable ({exc})") from exc

    state = unflatten_state(header.get("state"), arrays)
    kind = str(header.get("kind", ""))
    if expected_kind is not None and kind != expected_kind:
        raise _corrupt(path, f"kind {kind!r} does not match expected {expected_kind!r}")

    tel = get_telemetry()
    if tel.enabled:
        tel.registry.counter("checkpoint.loads", "checkpoint files read back").inc()
        tel.emit("checkpoint_loaded", path=str(path), kind=kind)
    return Checkpoint(
        kind=kind,
        meta=dict(header.get("meta", {})),
        state=state,
        format_version=int(version),
        repro_version=str(header.get("repro_version", "")),
        path=path,
    )
