"""Deterministic fault injection for crash-safety tests.

Three fault families, matching what actually happens to an edge device
in the field:

* **process death** mid-stream — :func:`crash_at` arms a pipeline to
  raise :class:`InjectedCrash` at an exact sample index, so tests can
  kill a run at step *k* reproducibly;
* **storage corruption** — :func:`truncate_file`, :func:`flip_bit`, and
  :func:`corrupt_version` damage checkpoint files in the precise ways a
  brownout or flash wear does (torn write, flipped cell, stale format);
* **sensor garbage** — :func:`nan_burst` splices a NaN window into a raw
  feature matrix, and the sensor-fault family (:func:`stuck_at`,
  :func:`dropout`, :func:`spike_train`, :func:`feature_dead`) reproduces
  the four classic field failures of cheap transducers: a frozen reading,
  a dead link reporting a constant, periodic electrical spikes, and a
  channel that flatlines for good. These produce *finite* garbage, so an
  unguarded pipeline streams it silently — exactly the scenario the
  :mod:`repro.guard` layer exists to catch.

Everything here is deterministic: no RNG, no wall clock.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from ..utils.exceptions import ReproError
from .checkpoint import _DIGEST_LEN, _LEN_FMT, _frame, MAGIC

__all__ = [
    "InjectedCrash",
    "crash_at",
    "truncate_file",
    "flip_bit",
    "corrupt_version",
    "nan_burst",
    "stuck_at",
    "dropout",
    "spike_train",
    "feature_dead",
]


class InjectedCrash(ReproError, RuntimeError):
    """Raised by an armed pipeline when it reaches the kill step."""


class crash_at:
    """Arm ``pipeline`` to raise :class:`InjectedCrash` at sample ``step``.

    The hook wraps ``pipeline._record`` as an *instance* attribute, so it
    fires just before the record for ``step`` would be produced — after
    any earlier checkpoint was written, before the step's result exists.
    Usable as a context manager (disarms on exit) or via :meth:`disarm`.

    Examples
    --------
    >>> with crash_at(pipe, 64):                      # doctest: +SKIP
    ...     pipe.run(stream, checkpoint_every=16, checkpoint_path=p)
    Traceback (most recent call last):
    InjectedCrash: ...
    """

    def __init__(self, pipeline, step: int) -> None:
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        self.pipeline = pipeline
        self.step = int(step)
        original = type(pipeline)._record

        def hooked(*args, **kwargs):
            if pipeline._index >= self.step:
                raise InjectedCrash(
                    f"injected crash at step {pipeline._index} "
                    f"(armed for step {self.step})"
                )
            return original(pipeline, *args, **kwargs)

        pipeline.__dict__["_record"] = hooked

    def disarm(self) -> None:
        """Remove the hook; the pipeline behaves normally again."""
        self.pipeline.__dict__.pop("_record", None)

    def __enter__(self) -> "crash_at":
        return self

    def __exit__(self, *exc_info) -> None:
        self.disarm()


def truncate_file(path: Union[str, Path], keep_bytes: Optional[int] = None) -> Path:
    """Truncate ``path`` in place — a torn write / power-cut artefact.

    With ``keep_bytes=None`` the file is cut to half its size.
    """
    path = Path(path)
    size = path.stat().st_size
    keep = size // 2 if keep_bytes is None else int(keep_bytes)
    if not 0 <= keep <= size:
        raise ValueError(f"keep_bytes {keep} outside [0, {size}]")
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return path


def flip_bit(path: Union[str, Path], bit_index: int) -> Path:
    """Flip one bit of ``path`` in place — a flash/SD single-bit error."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    byte, bit = divmod(int(bit_index), 8)
    if not 0 <= byte < len(data):
        raise ValueError(f"bit_index {bit_index} outside file of {len(data)} bytes")
    data[byte] ^= 1 << bit
    path.write_bytes(bytes(data))
    return path


def corrupt_version(path: Union[str, Path], format_version: int) -> Path:
    """Rewrite a checkpoint's ``format_version`` with a *valid* checksum.

    This simulates a file written by a different library revision: the
    frame is intact (digest passes), so only the version gate can catch
    it. The loader must raise ``CheckpointVersionError``, not a checksum
    error.
    """
    path = Path(path)
    raw = path.read_bytes()
    body = raw[len(MAGIC) + _DIGEST_LEN :]
    len_size = struct.calcsize(_LEN_FMT)
    (header_len,) = struct.unpack(_LEN_FMT, body[:len_size])
    header = json.loads(body[len_size : len_size + header_len].decode("utf-8"))
    header["format_version"] = int(format_version)
    header_bytes = json.dumps(header).encode("utf-8")
    new_body = (
        struct.pack(_LEN_FMT, len(header_bytes))
        + header_bytes
        + body[len_size + header_len :]
    )
    path.write_bytes(_frame(new_body))
    return path


def nan_burst(
    X: np.ndarray,
    start: int,
    length: int,
    columns: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Return a copy of ``X`` with a NaN burst — a dying-sensor window.

    ``DataStream`` rejects NaN at construction, so this operates on the
    raw matrix; tests feed the result to validation paths and assert the
    library refuses it loudly instead of streaming garbage.
    """
    X = np.asarray(X, dtype=np.float64).copy()
    if not 0 <= start <= len(X):
        raise ValueError(f"start {start} outside [0, {len(X)}]")
    stop = min(start + int(length), len(X))
    if columns is None:
        X[start:stop, :] = np.nan
    else:
        X[start:stop, list(columns)] = np.nan
    return X


def _window(X: np.ndarray, start: int, length: int) -> tuple[np.ndarray, int, int]:
    """Copy ``X`` and clamp the fault window — shared by the sensor faults."""
    X = np.asarray(X, dtype=np.float64).copy()
    if not 0 <= start <= len(X):
        raise ValueError(f"start {start} outside [0, {len(X)}]")
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    return X, int(start), min(int(start) + int(length), len(X))


def stuck_at(
    X: np.ndarray,
    start: int,
    length: int,
    columns: Optional[Sequence[int]] = None,
    value: Optional[float] = None,
) -> np.ndarray:
    """Freeze readings for a window — a sensor stuck at its last value.

    The affected columns repeat row ``start``'s reading (or ``value``
    when given) for ``length`` samples. Finite and usually in-range, so
    only distribution-level guards can notice it.
    """
    X, start, stop = _window(X, start, length)
    cols = slice(None) if columns is None else list(columns)
    held = X[start, cols].copy() if value is None else float(value)
    X[start:stop, cols] = held
    return X


def dropout(
    X: np.ndarray,
    start: int,
    length: int,
    columns: Optional[Sequence[int]] = None,
    fill: float = 0.0,
) -> np.ndarray:
    """Zero (or ``fill``) a window — a dead link reporting a constant.

    Unlike :func:`nan_burst` the readings stay finite, mimicking an ADC
    whose input line went open-circuit.
    """
    X, start, stop = _window(X, start, length)
    cols = slice(None) if columns is None else list(columns)
    X[start:stop, cols] = float(fill)
    return X


def spike_train(
    X: np.ndarray,
    start: int,
    length: int,
    columns: Optional[Sequence[int]] = None,
    *,
    period: int = 3,
    magnitude: float = 1e3,
) -> np.ndarray:
    """Add alternating ±``magnitude`` spikes every ``period`` samples.

    Electrical interference: most samples in the window are untouched,
    but every ``period``-th reading is blown far out of the learned
    bounds with a deterministic alternating sign.
    """
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    X, start, stop = _window(X, start, length)
    cols = slice(None) if columns is None else list(columns)
    for n, i in enumerate(range(start, stop, int(period))):
        X[i, cols] += magnitude if n % 2 == 0 else -magnitude
    return X


def feature_dead(
    X: np.ndarray,
    column: int,
    start: int = 0,
    value: float = 0.0,
) -> np.ndarray:
    """Flatline one feature from ``start`` to the end of the stream.

    The permanent version of :func:`dropout`: a channel fails and never
    comes back — the survive-the-month scenario for the degradation
    ladder's sanitizing rung.
    """
    X, start, _ = _window(X, start, 0)
    if not 0 <= int(column) < X.shape[1]:
        raise ValueError(f"column {column} outside matrix with {X.shape[1]} features")
    X[start:, int(column)] = float(value)
    return X
