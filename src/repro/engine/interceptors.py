"""The interceptor protocol and the three stateless-ish stack members.

An :class:`Interceptor` owns exactly one cross-cutting concern of a
streaming run. The engine drives the stack through a fixed set of hooks:

``run_scope``
    A context manager entered for the whole run (telemetry's
    ``pipeline.run`` span). Scopes are entered in stack order and exited
    in reverse, around *everything* else — including validation of
    engine options and the crash-unwind path.
``on_start`` / ``on_complete`` / ``on_abort``
    Lifecycle edges. ``on_start`` runs before the first chunk (resource
    acquisition); ``on_complete`` after the last chunk of a successful
    run; ``on_abort`` when any exception — including ``KeyboardInterrupt``
    and injected crashes — unwinds the loop, before the exception
    propagates.
``clamp``
    Caps the next sub-chunk length. Each interceptor sees the previous
    one's result; the engine starts from "everything that is left".
``wrap_consume``
    Builds the per-chunk consume chain around the pipeline's
    ``_process_chunk``. Wrapping happens in reverse stack order, so the
    first interceptor in the stack is the outermost layer at call time.
``allows_reference_loop``
    The chunked loop is bypassed entirely — one ``process_one`` call per
    sample, no chunk spans, no slicing — iff *every* interceptor allows
    it. This keeps the reference path byte- and telemetry-identical to
    the historical per-sample loop.

The checkpoint interceptor (the only one with heavy state) lives in
:mod:`repro.engine.checkpoint`.
"""

from __future__ import annotations

import time
from typing import Callable, ContextManager, Optional

import numpy as np

from .context import RunContext

__all__ = [
    "Interceptor",
    "ChunkScheduler",
    "GuardInterceptor",
    "TelemetryInterceptor",
]

#: Signature of one link of the per-chunk consume chain.
Consume = Callable[[np.ndarray, np.ndarray], list]


class Interceptor:
    """Base class: every hook is a no-op; override what the concern needs."""

    def run_scope(self, ctx: RunContext) -> Optional[ContextManager]:
        """Context manager wrapping the whole run, or ``None``."""
        return None

    def on_start(self, ctx: RunContext) -> None:
        """Acquire per-run resources before the first chunk."""

    def allows_reference_loop(self, ctx: RunContext) -> bool:
        """``False`` forces the chunked loop even for ``chunk_size<=1``."""
        return True

    def clamp(self, ctx: RunContext, take: int) -> int:
        """Cap the next sub-chunk length (``take`` >= 1 on entry)."""
        return take

    def wrap_consume(self, ctx: RunContext, consume: Consume) -> Consume:
        """Wrap the downstream consume chain; default passes it through."""
        return consume

    def after_chunk(self, ctx: RunContext, recs: list) -> None:
        """Observe the chunk just consumed (``ctx.position`` already advanced)."""

    def on_abort(self, ctx: RunContext) -> None:
        """Release resources when an exception unwinds the loop."""

    def on_complete(self, ctx: RunContext) -> None:
        """Release resources after a successful run."""


class ChunkScheduler(Interceptor):
    """Owns the sub-chunk length: ``chunk_size`` capped to what is left.

    ``chunk_size <= 1`` requests the per-sample reference loop; the
    engine honours that only when every other interceptor also allows it
    (a guard or a checkpoint still needs the chunked loop, which then
    degrades to one-sample chunks).
    """

    def __init__(self, chunk_size: int) -> None:
        self.chunk_size = int(chunk_size)
        self.step = max(1, self.chunk_size)

    def allows_reference_loop(self, ctx: RunContext) -> bool:
        return self.chunk_size <= 1

    def clamp(self, ctx: RunContext, take: int) -> int:
        return min(take, self.step)


class GuardInterceptor(Interceptor):
    """Routes every chunk through the pipeline's attached ``RuntimeGuard``.

    The guard is re-read per chunk (one attribute check — the historical
    ``_consume_chunk`` contract), so unguarded runs pay almost nothing
    and the guard's own fast path still delegates to the pipeline's
    vectorized ``_process_chunk``.
    """

    def allows_reference_loop(self, ctx: RunContext) -> bool:
        return ctx.pipeline.guard is None

    def wrap_consume(self, ctx: RunContext, consume: Consume) -> Consume:
        pipeline = ctx.pipeline

        def dispatch(Xc: np.ndarray, yc: np.ndarray) -> list:
            guard = pipeline.guard
            if guard is None:
                return consume(Xc, yc)
            return guard.process_chunk(Xc, yc)

        return dispatch


#: Recovery-span histogram edges (stream samples between drift and recon).
AUDIT_SPAN_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)


class TelemetryInterceptor(Interceptor):
    """Emits the run/chunk spans plus the ``drift_audit`` provenance stream.

    Per-sample counters and drift events stay with
    ``StreamPipeline._record``, which runs regardless of how the engine is
    stacked. On top of those, this interceptor watches the records flowing
    past ``after_chunk`` and stitches each drift detection to the
    reconstruction that answers it, emitting one structured ``drift_audit``
    event per drift: device id (when hosted by a fleet), stream index,
    window distance vs. the detector threshold, guard ladder level,
    wall-clock reconstruction latency, and the recovery span in samples.
    A drift superseded by a newer one, or still unresolved when the run
    ends, is audited with ``recovered=False``.

    When the hub is disabled every hook is a guarded no-op, so the
    overhead budget (<5%) holds. The per-sample reference loop bypasses
    ``after_chunk`` observers entirely, so audit events exist only on the
    chunked path — matching the historical telemetry of that loop.
    """

    def __init__(self, telemetry, *, device: Optional[str] = None) -> None:
        self.telemetry = telemetry
        self.device = device
        self._open: Optional[dict] = None

    def run_scope(self, ctx: RunContext) -> ContextManager:
        return self.telemetry.span(
            "pipeline.run", pipeline=ctx.pipeline.name, samples=ctx.n
        )

    def wrap_consume(self, ctx: RunContext, consume: Consume) -> Consume:
        tel = self.telemetry
        name = ctx.pipeline.name

        def traced(Xc: np.ndarray, yc: np.ndarray) -> list:
            with tel.span("pipeline.chunk", pipeline=name, start=ctx.position):
                return consume(Xc, yc)

        return traced

    # -- drift provenance ------------------------------------------------------

    def after_chunk(self, ctx: RunContext, recs: list) -> None:
        if not self.telemetry.enabled:
            return
        for rec in recs:
            if rec.drift_detected:
                if self._open is not None:
                    # A fresh drift before the last one recovered: the
                    # old reconstruction is moot — audit it as lost.
                    self._close(ctx, self._open, outcome="superseded")
                detector = getattr(ctx.pipeline, "detector", None)
                self._open = {
                    "index": int(rec.index),
                    "distance": float(rec.anomaly_score),
                    "threshold": getattr(detector, "theta_drift", None),
                    "t0": time.perf_counter(),
                }
                continue
            # Recovery = the first record after the drift that is no
            # longer part of a reconstruction. Pipelines with an explicit
            # terminal phase mark it "finish" (still flagged as
            # reconstructing); the others simply resume normal records.
            if self._open is not None and (
                rec.phase == "finish" or not rec.reconstructing
            ):
                opened, self._open = self._open, None
                self._close(ctx, opened, outcome="recovered", finish=int(rec.index))

    def _close(
        self,
        ctx: RunContext,
        opened: dict,
        *,
        outcome: str,
        finish: Optional[int] = None,
    ) -> None:
        tel = self.telemetry
        recovered = outcome == "recovered"
        seconds = time.perf_counter() - opened["t0"]
        span = None if finish is None else finish - opened["index"]
        guard = getattr(ctx.pipeline, "guard", None)
        fields = dict(
            device=self.device,
            pipeline=ctx.pipeline.name,
            index=opened["index"],
            distance=opened["distance"],
            threshold=opened["threshold"],
            ladder_level=(guard.level.name if guard is not None else None),
            recovered=recovered,
            outcome=outcome,
            recovery_index=finish,
            recovery_samples=span,
            recon_seconds=seconds if recovered else None,
        )
        tel.emit("drift_audit", **fields)
        if recovered:
            tel.histogram(
                "audit.recovery.samples",
                "samples between drift detection and reconstruction",
                buckets=AUDIT_SPAN_BUCKETS,
            ).observe(span)
            tel.histogram(
                "audit.recon.seconds",
                "wall-clock latency from drift to reconstructed model",
            ).observe(seconds)
        else:
            tel.counter(
                "audit.unrecovered", "drifts never answered by a reconstruction",
                labels=("outcome",),
            ).inc(outcome=outcome)

    def _flush_open(self, ctx: RunContext, outcome: str) -> None:
        if self._open is not None and self.telemetry.enabled:
            opened, self._open = self._open, None
            self._close(ctx, opened, outcome=outcome)

    def on_complete(self, ctx: RunContext) -> None:
        self._flush_open(ctx, "unrecovered_at_end")

    def on_abort(self, ctx: RunContext) -> None:
        self._flush_open(ctx, "aborted")
