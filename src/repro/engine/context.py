"""The mutable per-run state shared by the engine and its interceptors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

import numpy as np

if TYPE_CHECKING:  # pragma: no cover — typing only, no runtime import
    from ..core.pipeline import StepRecord, StreamPipeline
    from ..datasets.stream import DataStream

__all__ = ["RunContext"]


@dataclass
class RunContext:
    """Everything one engine run knows: the pipeline, the stream, progress.

    The engine owns ``position`` and ``records``; interceptors read them
    (and only the :class:`~repro.engine.checkpoint.CheckpointInterceptor`
    reads ``records`` — to slice out spans for the record log). ``X`` and
    ``y`` are the stream's arrays, hoisted once so the hot loop slices
    without attribute lookups.
    """

    pipeline: "StreamPipeline"
    stream: "DataStream"
    X: np.ndarray
    y: np.ndarray
    #: total samples in the stream
    n: int
    #: next stream index to consume (also: samples already in ``records``)
    position: int = 0
    #: records produced so far (resume pre-loads the checkpointed prefix)
    records: List["StepRecord"] = field(default_factory=list)

    @classmethod
    def for_run(
        cls,
        pipeline: "StreamPipeline",
        stream: "DataStream",
        *,
        start: int = 0,
        records: List["StepRecord"] | None = None,
    ) -> "RunContext":
        return cls(
            pipeline=pipeline,
            stream=stream,
            X=stream.X,
            y=stream.y,
            n=len(stream),
            position=int(start),
            records=[] if records is None else records,
        )
