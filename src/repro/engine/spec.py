"""Declarative experiments: a JSON-round-trippable spec and its builder.

An :class:`ExperimentSpec` is the single declarative description of one
evaluation cell — pipeline + params + dataset + seeds + engine options —
consumed by the CLI (``python -m repro spec file.json``), the
:class:`~repro.metrics.parallel.ParallelRunner` (whose cache keys are
:meth:`ExperimentSpec.config_hash`), and the table benchmarks. Building
the same spec twice yields byte-identical runs: every RNG derives from
the spec's seeds.

Seeds: ``seed`` drives the dataset synthesis (unless ``dataset_kwargs``
pins its own ``seed``) *and* the model unless ``model_seed`` overrides
the latter — the CLI's ``--model-seed`` maps straight onto that field.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional

from ..utils.exceptions import ConfigurationError
from .registry import resolve_dataset, resolve_pipeline

__all__ = [
    "ExperimentSpec",
    "Experiment",
    "build_experiment",
    "spec_hash",
    "canonical_json",
]

#: Bump when the canonical spec layout changes; cache keys change with it.
SPEC_VERSION = 2

_FIELDS = (
    "name",
    "pipeline",
    "dataset",
    "seed",
    "model_seed",
    "pipeline_kwargs",
    "dataset_kwargs",
    "n_test",
    "chunk_size",
    "guard_policy",
)


def canonical_json(canonical: Mapping[str, Any]) -> dict:
    """A canonical spec dict after one JSON round trip.

    Tuples become lists and numpy scalars become builtins — exactly the
    form a spec takes when read back from a cache file, so comparisons
    and hashes built on this never see container-type noise.
    """
    return json.loads(json.dumps(canonical, default=_json_fallback))


def spec_hash(canonical: Mapping[str, Any]) -> str:
    """Cache key for a canonical spec dict — the *single* hash used by
    :meth:`ExperimentSpec.config_hash` and every cache path derivation,
    so a spec and its stored result can never hash differently.
    """
    blob = json.dumps(canonical_json(canonical), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _json_fallback(value: Any) -> Any:
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        return item()
    raise TypeError(f"unsupported type in spec: {type(value).__name__}")


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully declarative experiment (method × dataset × seeds).

    Parameters
    ----------
    name:
        Display name (table row label). Not part of the cache key.
    pipeline:
        Key into the pipeline registry (see
        :data:`~repro.engine.registry.PIPELINE_BUILDERS`) or a
        ``"module:callable"`` path to a builder with the factory
        signature ``(X, y, *, seed=None, **kwargs)``.
    dataset:
        Key into the dataset registry or a ``"module:callable"`` path
        returning a ``(train, test)`` stream pair.
    seed:
        Experiment seed: forwarded to the dataset factory (unless
        ``dataset_kwargs`` pins its own ``seed``) and — when
        ``model_seed`` is ``None`` — to the pipeline builder.
    model_seed:
        Overrides the builder seed only (the paper tables fix the model
        seed while sweeping dataset seeds).
    pipeline_kwargs, dataset_kwargs:
        Extra keyword arguments for builder / factory (JSON-serializable).
    n_test:
        Truncate the test stream to its first ``n_test`` samples.
    chunk_size:
        Forwarded to :meth:`StreamPipeline.run` (None = default fast path).
    guard_policy:
        When set, attach a :class:`repro.guard.RuntimeGuard` with this
        input-fault policy (bounds learned from the training split).
    """

    name: str
    pipeline: str
    dataset: str
    seed: int = 0
    model_seed: Optional[int] = None
    pipeline_kwargs: Mapping[str, Any] = field(default_factory=dict)
    dataset_kwargs: Mapping[str, Any] = field(default_factory=dict)
    n_test: Optional[int] = None
    chunk_size: Optional[int] = None
    guard_policy: Optional[str] = None

    # -- legacy aliases (the pre-registry CellSpec vocabulary) ---------------

    @property
    def method(self) -> str:
        return self.pipeline

    @property
    def stream(self) -> str:
        return self.dataset

    @property
    def method_kwargs(self) -> Mapping[str, Any]:
        return self.pipeline_kwargs

    @property
    def stream_kwargs(self) -> Mapping[str, Any]:
        return self.dataset_kwargs

    # -- identity ------------------------------------------------------------

    @property
    def effective_model_seed(self) -> int:
        """The seed the pipeline builder actually receives."""
        return int(self.seed if self.model_seed is None else self.model_seed)

    def canonical(self) -> dict:
        """Order-independent dict of everything that affects the result."""
        return {
            "version": SPEC_VERSION,
            "pipeline": self.pipeline,
            "dataset": self.dataset,
            "seed": int(self.seed),
            "model_seed": None if self.model_seed is None else int(self.model_seed),
            "pipeline_kwargs": dict(sorted(self.pipeline_kwargs.items())),
            "dataset_kwargs": dict(sorted(self.dataset_kwargs.items())),
            "n_test": self.n_test,
            "chunk_size": self.chunk_size,
            "guard_policy": self.guard_policy,
        }

    def config_hash(self) -> str:
        """Stable hash of :meth:`canonical` — the grid-runner cache key."""
        return spec_hash(self.canonical())

    def replace(self, **changes) -> "ExperimentSpec":
        """A copy with ``changes`` applied (specs are immutable)."""
        return dataclasses.replace(self, **changes)

    # -- JSON ----------------------------------------------------------------

    def to_json(self) -> dict:
        """Lossless JSON-serializable form (see :meth:`from_json`)."""
        return {
            "name": self.name,
            "pipeline": self.pipeline,
            "dataset": self.dataset,
            "seed": int(self.seed),
            "model_seed": self.model_seed,
            "pipeline_kwargs": dict(self.pipeline_kwargs),
            "dataset_kwargs": dict(self.dataset_kwargs),
            "n_test": self.n_test,
            "chunk_size": self.chunk_size,
            "guard_policy": self.guard_policy,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_json` output (or hand-written JSON).

        Unknown keys are rejected with the list of valid ones, so a typo
        in a spec file fails loudly instead of silently dropping an option.
        """
        unknown = sorted(set(data) - set(_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"unknown ExperimentSpec field(s) {unknown}; "
                f"valid fields: {sorted(_FIELDS)}."
            )
        missing = [k for k in ("name", "pipeline", "dataset") if k not in data]
        if missing:
            raise ConfigurationError(
                f"ExperimentSpec is missing required field(s) {missing}."
            )
        return cls(**dict(data))


@dataclass
class Experiment:
    """A built (ready-to-run) experiment: streams, pipeline, optional guard."""

    spec: ExperimentSpec
    train: Any
    test: Any
    pipeline: Any
    guard: Any = None

    def run(self, **run_kwargs) -> List[Any]:
        """Run the pipeline over the test stream with the spec's chunking."""
        run_kwargs.setdefault("chunk_size", self.spec.chunk_size)
        return self.pipeline.run(self.test, **run_kwargs)


def build_experiment(spec: ExperimentSpec) -> Experiment:
    """Materialise ``spec``: synthesise streams, build + train the pipeline.

    Deterministic in the spec alone — building the same spec twice gives
    two independent experiments whose runs produce byte-identical record
    streams (the registry/spec tests pin this).
    """
    factory = resolve_dataset(spec.dataset)
    dataset_kwargs = dict(spec.dataset_kwargs)
    dataset_kwargs.setdefault("seed", int(spec.seed))
    train, test = factory(**dataset_kwargs)
    if spec.n_test is not None:
        test = test.take(int(spec.n_test))
    builder = resolve_pipeline(spec.pipeline)
    pipeline = builder(
        train.X,
        train.y,
        seed=spec.effective_model_seed,
        **dict(spec.pipeline_kwargs),
    )
    guard = None
    if spec.guard_policy is not None:
        from ..guard import RuntimeGuard

        guard = RuntimeGuard.from_init_data(train.X, policy=spec.guard_policy)
        pipeline.attach_guard(guard)
    return Experiment(spec=spec, train=train, test=test, pipeline=pipeline, guard=guard)
