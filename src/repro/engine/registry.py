"""String-keyed registries for pipelines, datasets, and detectors.

The declarative layer's name space: an :class:`~repro.engine.spec.ExperimentSpec`
(or a legacy ``CellSpec``) names its pipeline builder and dataset factory
by key, and workers/CLI/benchmarks resolve the key here. Registration is
either a decorator::

    from repro.engine import register_pipeline

    @register_pipeline("my-method")
    def build_my_method(X, y, *, seed=None, **kwargs):
        ...

or a direct call (``register_pipeline("proposed", build_proposed)``).
Any key not found in a registry falls back to a ``"module:callable"``
import path, so one-off builders never *have* to be registered.

The registries are plain module-level dicts on purpose: tests (and the
legacy :data:`repro.metrics.parallel.METHOD_BUILDERS` alias) monkeypatch
entries in place, and worker processes re-import this module and get the
same built-in population.

Contracts:

* **pipeline builders** — ``(X, y, *, seed=None, **kwargs) -> StreamPipeline``,
  trained on the initial data and ready to stream;
* **dataset factories** — ``(**kwargs) -> (train, test)`` pair of
  :class:`~repro.datasets.stream.DataStream`;
* **detectors** — the detector class itself (constructor kwargs are the
  caller's business); registered so specs and ablation tooling can name
  detector families declaratively.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from ..core import factory
from ..utils.exceptions import ConfigurationError

__all__ = [
    "PIPELINE_BUILDERS",
    "DATASET_FACTORIES",
    "DETECTORS",
    "register_pipeline",
    "register_dataset",
    "register_detector",
    "resolve_pipeline",
    "resolve_dataset",
    "resolve_detector",
]

#: name → pipeline builder ``(X, y, *, seed=None, **kwargs) -> StreamPipeline``
PIPELINE_BUILDERS: Dict[str, Callable[..., Any]] = {}

#: name → dataset factory ``(**kwargs) -> (train, test)`` stream pair
DATASET_FACTORIES: Dict[str, Callable[..., Tuple[Any, Any]]] = {}

#: name → drift-detector class
DETECTORS: Dict[str, Any] = {}


def _register(
    registry: Dict[str, Any], kind: str, name: str, obj: Optional[Any], overwrite: bool
):
    def add(target):
        if not overwrite and name in registry and registry[name] is not target:
            raise ConfigurationError(
                f"{kind} {name!r} is already registered; pass overwrite=True "
                "to replace it."
            )
        registry[name] = target
        return target

    return add if obj is None else add(obj)


def register_pipeline(name: str, builder: Optional[Callable] = None, *, overwrite: bool = False):
    """Register (or decorate) a pipeline builder under ``name``."""
    return _register(PIPELINE_BUILDERS, "pipeline builder", name, builder, overwrite)


def register_dataset(name: str, factory_fn: Optional[Callable] = None, *, overwrite: bool = False):
    """Register (or decorate) a ``(train, test)`` dataset factory under ``name``."""
    return _register(DATASET_FACTORIES, "dataset factory", name, factory_fn, overwrite)


def register_detector(name: str, detector: Optional[Any] = None, *, overwrite: bool = False):
    """Register (or decorate) a drift-detector class under ``name``."""
    return _register(DETECTORS, "detector", name, detector, overwrite)


def _resolve(registry: Mapping[str, Any], key: str, kind: str):
    """Look up ``key`` in ``registry`` or import a ``module:attr`` path."""
    if key in registry:
        return registry[key]
    if ":" in key:
        mod, attr = key.split(":", 1)
        return getattr(importlib.import_module(mod), attr)
    raise ConfigurationError(
        f"unknown {kind} {key!r}; registered: {sorted(registry)} "
        f"(or use a 'module:callable' path)."
    )


def resolve_pipeline(key: str) -> Callable:
    """Builder for ``key`` — registered name or ``"module:callable"`` path."""
    return _resolve(PIPELINE_BUILDERS, key, "method builder")


def resolve_dataset(key: str) -> Callable:
    """Dataset factory for ``key`` — registered name or import path."""
    return _resolve(DATASET_FACTORIES, key, "stream factory")


def resolve_detector(key: str):
    """Detector class for ``key`` — registered name or import path."""
    return _resolve(DETECTORS, key, "detector")


# --------------------------------------------------------------------------
# Built-in population — the paper's methods, datasets, and detector families
# --------------------------------------------------------------------------

register_pipeline("proposed", factory.build_proposed)
register_pipeline("baseline", factory.build_baseline)
register_pipeline("onlad", factory.build_onlad)
register_pipeline("quanttree", factory.build_quanttree_pipeline)
register_pipeline("spll", factory.build_spll_pipeline)
register_pipeline("hdddm", factory.build_hdddm_pipeline)


@register_dataset("nslkdd")
def _stream_nslkdd(**kwargs):
    from ..datasets import make_nslkdd_like
    from ..datasets.nslkdd import NSLKDDConfig

    config_kwargs = {
        k: kwargs.pop(k)
        for k in list(kwargs)
        if k in {f.name for f in NSLKDDConfig.__dataclass_fields__.values()}
    }
    config = NSLKDDConfig(**config_kwargs) if config_kwargs else None
    return make_nslkdd_like(config, **kwargs)


@register_dataset("coolingfan")
def _stream_cooling_fan(**kwargs):
    from ..datasets import make_cooling_fan_like

    scenario = kwargs.pop("scenario", "sudden")
    return make_cooling_fan_like(scenario, **kwargs)


@register_dataset("blobs")
def _stream_blobs(
    *,
    n_features: int = 6,
    n_train: int = 240,
    n_test: int = 1200,
    drift_at: int = 400,
    shift: float = 0.45,
    seed: int = 0,
):
    """Small two-blob sudden-drift pair — fast cells for tests/examples."""
    from ..datasets import (
        GaussianConcept,
        make_stationary_stream,
        make_sudden_drift_stream,
    )

    rng = np.random.default_rng(seed)
    means = rng.uniform(0.1, 0.9, size=(2, n_features))
    means[1] = 1.0 - means[0]
    old = GaussianConcept(means, 0.05)
    moved = means.copy()
    moved[0] = moved[0] + shift * (moved[1] - moved[0])
    new = GaussianConcept(moved, 0.08)
    train = make_stationary_stream(old, n_train, seed=seed, name="train")
    test = make_sudden_drift_stream(
        old, new, n_samples=n_test, drift_at=drift_at, seed=seed + 1, name="blobs"
    )
    return train, test


def _register_builtin_detectors() -> None:
    from ..core.detector import SequentialDriftDetector
    from ..detectors import ADWIN, DDM, SPLL, NoDetection, PageHinkley, QuantTree
    from ..detectors.hdddm import HDDDM

    register_detector("sequential", SequentialDriftDetector)
    register_detector("quanttree", QuantTree)
    register_detector("spll", SPLL)
    register_detector("hdddm", HDDDM)
    register_detector("ddm", DDM)
    register_detector("adwin", ADWIN)
    register_detector("page_hinkley", PageHinkley)
    register_detector("none", NoDetection)


_register_builtin_detectors()
