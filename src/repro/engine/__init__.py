"""repro.engine — the composable streaming engine + declarative registry.

Two layers (see ``docs/architecture.md``):

* **engine core** — :class:`StreamEngine` drives a pipeline over a
  stream through an ordered :class:`Interceptor` stack
  (:class:`ChunkScheduler`, :class:`GuardInterceptor`,
  :class:`CheckpointInterceptor`, :class:`TelemetryInterceptor`), each
  owning exactly one cross-cutting concern.
  :meth:`~repro.core.pipeline.StreamPipeline.run` / ``resume`` are thin
  wrappers over :func:`run_stream` / :func:`resume_stream`.
* **declarative layer** — string-keyed registries
  (:func:`register_pipeline` / :func:`register_dataset` /
  :func:`register_detector`) and the JSON-round-trippable
  :class:`ExperimentSpec` consumed by the CLI, the parallel grid runner,
  and the benchmarks.

Layering: this package may import :mod:`repro.core` (and, lazily, the
guard/resilience/telemetry services); :mod:`repro.core` only ever
imports it inside ``run``/``resume`` — ``tools/check_layering.py``
enforces the direction.
"""

from .checkpoint import CheckpointInterceptor, stream_id
from .context import RunContext
from .core import StreamEngine, default_stack, resume_stream, run_stream
from .interceptors import (
    ChunkScheduler,
    GuardInterceptor,
    Interceptor,
    TelemetryInterceptor,
)
from .registry import (
    DATASET_FACTORIES,
    DETECTORS,
    PIPELINE_BUILDERS,
    register_dataset,
    register_detector,
    register_pipeline,
    resolve_dataset,
    resolve_detector,
    resolve_pipeline,
)
from .session import StreamSession
from .spec import Experiment, ExperimentSpec, build_experiment, canonical_json, spec_hash

__all__ = [
    "RunContext",
    "Interceptor",
    "ChunkScheduler",
    "GuardInterceptor",
    "TelemetryInterceptor",
    "CheckpointInterceptor",
    "StreamEngine",
    "StreamSession",
    "default_stack",
    "run_stream",
    "resume_stream",
    "stream_id",
    "PIPELINE_BUILDERS",
    "DATASET_FACTORIES",
    "DETECTORS",
    "register_pipeline",
    "register_dataset",
    "register_detector",
    "resolve_pipeline",
    "resolve_dataset",
    "resolve_detector",
    "ExperimentSpec",
    "Experiment",
    "build_experiment",
    "spec_hash",
    "canonical_json",
]
