"""Checkpoint/record-log persistence as an engine interceptor.

This is the engine home of what used to be
``StreamPipeline._run_checkpointed``: deferred record-log appends,
dirty-tracking per the pipeline's ``checkpoint_volatility``, the
epoch/trust rule, clean-interval batching, and the crash-unwind path.
The record streams it produces are byte-identical to the historical
in-pipeline implementation — the golden-resume suite pins that.

Persistence contract (unchanged):

* sub-chunks are clamped to the next checkpoint boundary so saves land
  at exact multiples of ``every`` samples;
* a *dirty* boundary (state may have changed) appends the accumulated
  records with a bumped epoch, flushes the log, then submits the state
  container to the shared strict-FIFO writer — the log block reaches the
  OS before the container that references it (trust rule);
* a *clean* boundary writes nothing; accumulated clean records reach the
  log every ``checkpoint_sync_blocks`` intervals or on unwind;
* the unwind appends a clean tail (resumable — the on-disk state still
  covers it) but drops a dirty one, and never masks the original
  exception with a persistence error;
* the writer is drained before control returns or the exception
  propagates, so a killed run is immediately resumable and a finished
  one can unlink its checkpoint without racing the worker thread.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from .context import RunContext
from .interceptors import Interceptor

__all__ = ["CheckpointInterceptor", "stream_id"]


def stream_id(stream) -> dict:
    """Identity of a stream as stored in (and checked against) checkpoints."""
    return {
        "fingerprint": stream.fingerprint(),
        "length": int(len(stream)),
        "name": stream.name,
        "n_features": int(stream.X.shape[1]),
    }


class CheckpointInterceptor(Interceptor):
    """Persist the run every ``every`` samples to ``path`` (+ ``.log`` sidecar).

    Fresh runs use the defaults; :func:`~repro.engine.core.resume_stream`
    passes ``start_epoch``/``state_written``/``log_trusted_bytes`` so the
    interceptor continues the existing files exactly where the trusted
    log prefix ends.
    """

    def __init__(
        self,
        path: Union[str, Path],
        every: int,
        *,
        start_epoch: int = 0,
        state_written: bool = False,
        log_trusted_bytes: Optional[int] = None,
    ) -> None:
        self.path = Path(path)
        self.every = int(every)
        self._epoch = int(start_epoch)
        self._state_written = bool(state_written)
        self._trusted_bytes = log_trusted_bytes

    def allows_reference_loop(self, ctx: RunContext) -> bool:
        return False  # boundaries need the clamped chunked loop

    def on_start(self, ctx: RunContext) -> None:
        from ..resilience.checkpoint import save_checkpoint
        from ..resilience.reclog import RecordLogWriter, record_log_path
        from ..resilience.writer import shared_writer

        pipeline = ctx.pipeline
        self._save_checkpoint = save_checkpoint
        self._volatility = pipeline.checkpoint_volatility
        self._durable = pipeline.checkpoint_durable
        self._sync_blocks = pipeline.checkpoint_sync_blocks
        self._dirty = self._volatility == "always"
        self._unsynced = 0
        self._last_saved = ctx.position
        self._last_appended = ctx.position
        self._stream_id = stream_id(ctx.stream)
        self._log = RecordLogWriter(
            record_log_path(self.path), trusted_bytes=self._trusted_bytes
        )
        self._writer = shared_writer()

    def clamp(self, ctx: RunContext, take: int) -> int:
        # Cap at the next boundary so saves land at exact multiples of
        # ``every`` (a state change may still end the chunk earlier).
        return min(take, max(1, self._last_saved + self.every - ctx.position))

    def after_chunk(self, ctx: RunContext, recs: list) -> None:
        i = ctx.position
        if self._volatility == "quiet" and not self._dirty:
            # Every fast path returns the state-mutating sample *last* in
            # its sub-chunk, so one O(1) look at the tail record suffices.
            last = recs[-1]
            if last.phase != "predict" or last.drift_detected or last.reconstructing:
                self._dirty = True
        if i - self._last_saved >= self.every and i < ctx.n:
            if self._dirty or not self._state_written:
                # A dirty span's block carries the *new* epoch and lands
                # before its container: a crash in between leaves a
                # higher-epoch tail that resume correctly distrusts.
                self._epoch += 1
                self._log.append(
                    ctx.records[self._last_appended : i],
                    start_index=self._last_appended,
                    epoch=self._epoch,
                )
                self._last_appended = i
                # The block must reach the OS before the sync + container
                # task can run (sync only fsyncs the fd).
                self._log.flush()
                self._submit_state(ctx, i, self._epoch)
                self._state_written = True
                self._dirty = self._volatility == "always"
                self._unsynced = 0
            else:
                # Clean interval: nothing to persist — the log stays
                # deferred so the pure-predict hot path writes nothing.
                # Every ``checkpoint_sync_blocks`` intervals the
                # accumulated span is appended and pushed to the OS,
                # bounding how much progress a SIGKILL (which skips the
                # unwind hook) can cost; a plain exception loses nothing
                # either way.
                self._unsynced += 1
                if self._unsynced >= self._sync_blocks:
                    self._log.append(
                        ctx.records[self._last_appended : i],
                        start_index=self._last_appended,
                        epoch=self._epoch,
                    )
                    self._last_appended = i
                    self._log.flush()
                    if self._durable:
                        self._writer.submit(self._log.sync, scope=self)
                    self._unsynced = 0
            self._last_saved = i

    def _submit_state(self, ctx: RunContext, boundary: int, snap_epoch: int) -> None:
        # get_state() is an isolated snapshot (the resilience state tests
        # assert this), so the worker thread can serialise it while the
        # loop keeps mutating the live pipeline.
        pipeline = ctx.pipeline
        snapshot = pipeline.get_state()
        state = {
            "pipeline_class": type(pipeline).__name__,
            "pipeline": snapshot,
            "position": boundary,
            "checkpoint_every": int(self.every),
            "epoch": snap_epoch,
            "stream": self._stream_id,
        }
        meta = {"pipeline": pipeline.name, "position": boundary}
        durable = self._durable
        log = self._log
        save_checkpoint = self._save_checkpoint
        path = self.path

        def task() -> None:
            if durable:
                # The boundary's log block must be durable before the
                # container that references it (trust rule).
                log.sync()
            save_checkpoint(path, state, kind="pipeline-run", meta=meta, durable=durable)

        self._writer.submit(task, scope=self)

    def on_abort(self, ctx: RunContext) -> None:
        # Crash unwind: if state has not changed since the last container
        # write, the accumulated clean records are still resumable —
        # append them so resume continues from the exact crash point
        # rather than the last boundary. (A dirty tail is useless to
        # resume — the on-disk state predates it — so it is dropped.)
        # Never let persistence errors mask the original exception.
        if not self._dirty and ctx.position > self._last_appended:
            try:
                self._log.append(
                    ctx.records[self._last_appended : ctx.position],
                    start_index=self._last_appended,
                    epoch=self._epoch,
                )
                self._log.flush()
            except Exception:
                pass
        try:
            self._writer.flush(scope=self)
        except Exception:
            pass
        self._log.close()

    def on_complete(self, ctx: RunContext) -> None:
        try:
            self._writer.flush(scope=self)
        finally:
            self._log.close()
