"""The minimal streaming driver: clamp → consume → observe, per chunk.

:class:`StreamEngine` owns nothing but the loop; every cross-cutting
concern (chunk sizing, guard routing, telemetry spans, checkpointing)
lives in an ordered :class:`~repro.engine.interceptors.Interceptor`
stack. ``StreamPipeline.run``/``resume`` assemble the default stack via
:func:`run_stream` / :func:`resume_stream`, so the public pipeline API
is unchanged while the run loop itself is ~40 lines.

Byte-identity contract: for every pipeline × dataset × option combo the
records this engine produces are identical to the pre-engine monolithic
loop — the golden-equivalence, checkpoint-resume, and guard-chaos suites
pin this, including the per-sample *reference loop* (taken only when
every interceptor allows it) which emits no chunk spans and does no
slicing, exactly like the historical ``chunk_size<=1`` bypass.
"""

from __future__ import annotations

from contextlib import ExitStack
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..utils.exceptions import CheckpointCorruptError, ConfigurationError
from ..utils.validation import validate_checkpoint_config
from .checkpoint import CheckpointInterceptor, stream_id
from .context import RunContext
from .interceptors import (
    ChunkScheduler,
    GuardInterceptor,
    Interceptor,
    TelemetryInterceptor,
)

__all__ = [
    "StreamEngine",
    "default_stack",
    "run_stream",
    "resume_stream",
    "prepare_stack",
    "drive_chunks",
]


def prepare_stack(stack: Sequence[Interceptor], ctx: RunContext):
    """Build the per-chunk machinery for ``stack``: the wrapped consume
    chain plus the clamper/observer sub-lists (interceptors that override
    the respective hook). Done once per run — or once per session — so
    the hot loop pays no ``isinstance``/lookup cost per chunk."""
    consume = ctx.pipeline._process_chunk
    for ic in reversed(stack):
        consume = ic.wrap_consume(ctx, consume)
    base_clamp = Interceptor.clamp
    clampers = [ic for ic in stack if type(ic).clamp is not base_clamp]
    base_after = Interceptor.after_chunk
    observers = [ic for ic in stack if type(ic).after_chunk is not base_after]
    return consume, clampers, observers


def drive_chunks(
    ctx: RunContext,
    consume,
    clampers: List[Interceptor],
    observers: List[Interceptor],
    X,
    y,
    *,
    base: int,
    stop: int,
) -> None:
    """Advance ``ctx.position`` to ``stop`` through the prepared chain.

    ``X``/``y`` hold the samples for stream-global indices
    ``[base, base + len(X))`` — a whole stream for :class:`StreamEngine`
    (``base=0``) or one externally-arriving chunk for a
    :class:`~repro.engine.session.StreamSession`.
    """
    while ctx.position < stop:
        i = ctx.position
        take = stop - i
        for ic in clampers:
            take = ic.clamp(ctx, take)
        lo = i - base
        recs = consume(X[lo : lo + take], y[lo : lo + take])
        ctx.records.extend(recs)
        ctx.position = i + len(recs)
        for ic in observers:
            ic.after_chunk(ctx, recs)


class StreamEngine:
    """Drive ``pipeline`` over ``stream`` through an interceptor stack."""

    def __init__(
        self,
        pipeline,
        stream,
        stack: Sequence[Interceptor],
        *,
        start: int = 0,
        records: Optional[list] = None,
    ) -> None:
        self.stack: List[Interceptor] = list(stack)
        self.ctx = RunContext.for_run(
            pipeline, stream, start=start, records=records
        )

    def run(self) -> list:
        """Consume the stream; returns the full record list."""
        ctx = self.ctx
        with ExitStack() as scopes:
            for ic in self.stack:
                scope = ic.run_scope(ctx)
                if scope is not None:
                    scopes.enter_context(scope)
            return self._drive(ctx)

    def _drive(self, ctx: RunContext) -> list:
        stack = self.stack
        for ic in stack:
            ic.on_start(ctx)
        try:
            if ctx.position == 0 and all(
                ic.allows_reference_loop(ctx) for ic in stack
            ):
                # Reference loop: per-sample, no slicing, no chunk spans.
                pipeline = ctx.pipeline
                recs = [pipeline.process_one(x, y) for x, y in ctx.stream]
                ctx.records.extend(recs)
                ctx.position = ctx.n
            else:
                consume, clampers, observers = prepare_stack(stack, ctx)
                drive_chunks(
                    ctx, consume, clampers, observers,
                    ctx.X, ctx.y, base=0, stop=ctx.n,
                )
        except BaseException:
            for ic in stack:
                ic.on_abort(ctx)
            raise
        for ic in stack:
            ic.on_complete(ctx)
        return ctx.records


def default_stack(
    pipeline,
    chunk_size: int,
    *,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    checkpoint: Optional[CheckpointInterceptor] = None,
) -> List[Interceptor]:
    """The stack ``StreamPipeline.run`` uses: telemetry → guard → scheduler
    (→ checkpoint). Telemetry first so its chunk span wraps the guard
    dispatch, exactly like the historical loop."""
    stack: List[Interceptor] = [
        TelemetryInterceptor(pipeline.telemetry),
        GuardInterceptor(),
        ChunkScheduler(chunk_size),
    ]
    if checkpoint is not None:
        stack.append(checkpoint)
    elif checkpoint_path is not None:
        stack.append(CheckpointInterceptor(checkpoint_path, checkpoint_every))
    return stack


def run_stream(
    pipeline,
    stream,
    *,
    chunk_size: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
) -> list:
    """Run ``pipeline`` over ``stream`` with the default interceptor stack.

    This is what :meth:`StreamPipeline.run` delegates to; see its
    docstring for the chunking and checkpointing semantics.
    """
    every, path = validate_checkpoint_config(checkpoint_every, checkpoint_path)
    chunk = (
        pipeline.default_chunk_size if chunk_size is None else int(chunk_size)
    )
    stack = default_stack(
        pipeline, chunk, checkpoint_every=every, checkpoint_path=path
    )
    return StreamEngine(pipeline, stream, stack).run()


def resume_stream(
    pipeline,
    stream,
    checkpoint_path: Union[str, Path],
    *,
    chunk_size: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
) -> list:
    """Continue an interrupted checkpointed run from its files.

    This is what :meth:`StreamPipeline.resume` delegates to; see its
    docstring for the trusted-prefix and error semantics.
    """
    from ..resilience.checkpoint import load_checkpoint
    from ..resilience.reclog import read_record_log, record_log_path

    path = Path(checkpoint_path)
    ckpt = load_checkpoint(path, expected_kind="pipeline-run")
    state = ckpt.state
    if state["pipeline_class"] != type(pipeline).__name__:
        raise ConfigurationError(
            f"checkpoint is for pipeline {state['pipeline_class']!r}, "
            f"not {type(pipeline).__name__!r}."
        )
    expected = stream_id(stream)
    if state["stream"] != expected:
        raise ConfigurationError(
            f"checkpoint stream {state['stream']!r} does not match the "
            f"given stream {expected!r}."
        )
    epoch = int(state["epoch"])
    base_position = int(state["position"])
    records, trusted_bytes = read_record_log(record_log_path(path), max_epoch=epoch)
    if len(records) < base_position:
        tel = pipeline.telemetry
        if tel.enabled:
            tel.registry.counter(
                "checkpoint.corrupt", "corrupt checkpoints rejected"
            ).inc()
        raise CheckpointCorruptError(
            f"record log for {path} is missing or damaged before the "
            f"checkpoint position ({len(records)} of {base_position} "
            "records recovered)."
        )
    position = len(records)
    pipeline.set_state(state["pipeline"])
    # The trusted log may extend past the container's position by clean
    # intervals (only the sample counter advanced); fast-forward the
    # counter to match.
    pipeline._index = position
    pipeline.last_resumed_at = position
    every = (
        int(state["checkpoint_every"])
        if checkpoint_every is None
        else int(checkpoint_every)
    )
    chunk = (
        pipeline.default_chunk_size if chunk_size is None else int(chunk_size)
    )
    tel = pipeline.telemetry
    if tel.enabled:
        tel.registry.counter("pipeline.resumes", "checkpointed runs resumed").inc()
        tel.emit(
            "run_resumed",
            pipeline=pipeline.name,
            position=position,
            path=str(path),
        )
    stack = default_stack(
        pipeline,
        chunk,
        checkpoint=CheckpointInterceptor(
            path,
            every,
            start_epoch=epoch,
            state_written=True,
            log_trusted_bytes=trusted_bytes,
        ),
    )
    return StreamEngine(
        pipeline, stream, stack, start=position, records=records
    ).run()
