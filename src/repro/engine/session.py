"""Long-lived incremental sessions: the engine loop, chunk by chunk.

:class:`~repro.engine.core.StreamEngine` consumes a whole
:class:`~repro.datasets.stream.DataStream` in one call. A
:class:`StreamSession` keeps the same interceptor machinery **open
between chunks** so data can arrive on someone else's schedule — the
unit of multiplexing in :mod:`repro.fleet`, where one process drives
thousands of device sessions and each device's samples trickle in
interleaved with every other device's.

The interceptor contract is unchanged: ``run_scope``/``on_start`` fire
at :meth:`StreamSession.open`, every :meth:`feed` drives the clamp →
consume → observe loop over the freshly arrived samples, and
:meth:`close` / :meth:`abort` fire ``on_complete`` / ``on_abort`` and
exit the scopes. Because pipeline record streams are chunk-boundary
invariant (the chunked-equivalence suite pins this), *any* interleaving
and sizing of ``feed`` calls yields records byte-identical to one
``run()`` over the concatenated data — which is what makes fleet
multiplexing and LRU evict/restore safe.

A session does **not** own a stream (``ctx.stream`` is ``None``), so
stacks containing the :class:`~repro.engine.checkpoint.CheckpointInterceptor`
— which identifies runs by their stream — are not meaningful here;
persistence of sessions is the caller's concern (see
:class:`repro.fleet.FleetManager`, which checkpoints whole sessions on
eviction).
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from typing import List, Optional, Sequence

import numpy as np

from ..utils.exceptions import ConfigurationError
from .context import RunContext
from .core import drive_chunks, prepare_stack
from .interceptors import Interceptor

__all__ = ["StreamSession"]

_EMPTY_X = np.empty((0, 1), dtype=np.float64)
_EMPTY_Y = np.empty((0,), dtype=np.int64)


class StreamSession:
    """Drive one pipeline through an interceptor stack as chunks arrive.

    Parameters
    ----------
    pipeline:
        The :class:`~repro.core.pipeline.StreamPipeline` to drive. Its
        ``_index`` must already agree with ``start`` (it does for a
        freshly built pipeline at 0, and for a restored one whose
        ``set_state`` was fed a snapshot taken at ``start``).
    stack:
        Ordered interceptors (e.g. telemetry → guard → scheduler). The
        checkpoint interceptor is *not* supported — see the module
        docstring.
    start:
        Stream-global index of the first sample the session will see.
    records:
        Pre-existing records ``[0, start)`` for a resumed/restored
        session; the session appends to this list.

    Lifecycle: ``open() → feed()* → close()`` (or ``abort()``). ``feed``
    returns the records for *its* samples; :attr:`records` accumulates
    everything. A consume-chain exception tears the session down
    (``on_abort`` + scope exit) before propagating.
    """

    def __init__(
        self,
        pipeline,
        stack: Sequence[Interceptor],
        *,
        start: int = 0,
        records: Optional[list] = None,
    ) -> None:
        self.stack: List[Interceptor] = list(stack)
        self.ctx = RunContext(
            pipeline=pipeline,
            stream=None,
            X=_EMPTY_X,
            y=_EMPTY_Y,
            n=int(start),
            position=int(start),
            records=[] if records is None else records,
        )
        self._scopes: Optional[ExitStack] = None
        self._prepared = None
        self._finished = False
        #: number of :meth:`feed` calls that ran to completion.
        self.feeds = 0
        #: cumulative wall time spent inside :meth:`feed`.
        self.feed_seconds = 0.0
        #: wall time of the most recent :meth:`feed` — the session-level
        #: latency signal the serving admission controller samples.
        self.last_feed_seconds = 0.0

    # -- introspection ---------------------------------------------------------

    @property
    def pipeline(self):
        return self.ctx.pipeline

    @property
    def position(self) -> int:
        """Stream-global index of the next sample to consume."""
        return self.ctx.position

    @property
    def records(self) -> list:
        """All records this session (and any restored prefix) produced."""
        return self.ctx.records

    @property
    def is_open(self) -> bool:
        return self._scopes is not None

    # -- lifecycle -------------------------------------------------------------

    def open(self) -> "StreamSession":
        """Enter the run scopes and fire ``on_start``; returns ``self``."""
        if self._scopes is not None:
            raise ConfigurationError("session is already open.")
        if self._finished:
            raise ConfigurationError("session is finished; build a new one.")
        scopes = ExitStack()
        try:
            for ic in self.stack:
                scope = ic.run_scope(self.ctx)
                if scope is not None:
                    scopes.enter_context(scope)
            for ic in self.stack:
                ic.on_start(self.ctx)
            self._prepared = prepare_stack(self.stack, self.ctx)
        except BaseException:
            scopes.close()
            raise
        self._scopes = scopes
        return self

    def feed(self, Xc: np.ndarray, yc: np.ndarray) -> list:
        """Consume one arriving chunk; returns the records it produced.

        ``Xc``/``yc`` are the samples at stream-global indices
        ``[position, position + len(Xc))``. The chunk is driven through
        the same clamp → consume → observe loop as a whole-stream run,
        so schedulers still split it and guards still screen it.
        """
        if self._scopes is None:
            raise ConfigurationError(
                "session is not open (open() it, or it was already closed)."
            )
        Xc = np.asarray(Xc)
        yc = np.asarray(yc)
        if len(Xc) != len(yc):
            raise ConfigurationError(
                f"chunk has {len(Xc)} samples but {len(yc)} labels."
            )
        if len(Xc) == 0:
            return []
        ctx = self.ctx
        base = ctx.position
        stop = base + len(Xc)
        ctx.X, ctx.y = Xc, yc
        ctx.n = stop
        before = len(ctx.records)
        consume, clampers, observers = self._prepared
        t0 = time.perf_counter()
        try:
            drive_chunks(
                ctx, consume, clampers, observers, Xc, yc, base=base, stop=stop
            )
        except BaseException:
            self._teardown(ok=False)
            raise
        self.last_feed_seconds = time.perf_counter() - t0
        self.feed_seconds += self.last_feed_seconds
        self.feeds += 1
        return ctx.records[before:]

    def close(self) -> list:
        """Fire ``on_complete``, exit the scopes; returns all records.

        Idempotent: closing a closed session just returns the records.
        """
        if self._scopes is not None:
            self._teardown(ok=True)
        return self.ctx.records

    def abort(self) -> None:
        """Fire ``on_abort`` and exit the scopes (no-op when closed)."""
        if self._scopes is not None:
            self._teardown(ok=False)

    def _teardown(self, *, ok: bool) -> None:
        scopes, self._scopes = self._scopes, None
        self._prepared = None
        self._finished = True
        try:
            for ic in self.stack:
                if ok:
                    ic.on_complete(self.ctx)
                else:
                    ic.on_abort(self.ctx)
        finally:
            scopes.close()
