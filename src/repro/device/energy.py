"""Energy model — battery-life implications of the latency numbers.

The paper motivates the work with battery-powered devices ("Since they
are often battery-powered, low-power consumption is required", §1) but
reports only time and memory. This module derives the missing column:
with a device's active/idle power draw, per-sample energy follows from
the latency model, and battery life from the sampling period.

Power figures are catalogue values for the two boards (Pi 4 ≈ 4 W active
under single-core load, ≈ 2 W idle; Pico ≈ 0.09 W active, ≈ 0.006 W in
dormant sleep between samples).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_positive
from .profiles import DeviceProfile, RASPBERRY_PI_4, RASPBERRY_PI_PICO

__all__ = ["PowerProfile", "PI4_POWER", "PICO_POWER", "energy_per_sample_mj", "battery_life_hours"]


@dataclass(frozen=True)
class PowerProfile:
    """Active/idle power draw of a device, in watts."""

    device: DeviceProfile
    active_watts: float
    idle_watts: float

    def __post_init__(self) -> None:
        if self.active_watts <= 0 or self.idle_watts < 0:
            raise ConfigurationError("power draws must be positive (idle >= 0).")
        if self.idle_watts > self.active_watts:
            raise ConfigurationError("idle power cannot exceed active power.")


#: Raspberry Pi 4 Model B under single-core compute load.
PI4_POWER = PowerProfile(RASPBERRY_PI_4, active_watts=4.0, idle_watts=2.0)
#: Raspberry Pi Pico: active core vs dormant sleep.
PICO_POWER = PowerProfile(RASPBERRY_PI_PICO, active_watts=0.09, idle_watts=0.006)


def energy_per_sample_mj(
    power: PowerProfile,
    compute_seconds: float,
    *,
    sample_period_seconds: float | None = None,
) -> float:
    """Millijoules consumed per processed sample.

    ``compute_seconds`` is the active time (from the latency model).
    When ``sample_period_seconds`` is given, the idle remainder of the
    period is charged at idle power (the duty-cycled deployment); the
    compute time must fit in the period.
    """
    check_positive(compute_seconds, "compute_seconds", strict=False)
    active_j = power.active_watts * compute_seconds
    if sample_period_seconds is None:
        return 1e3 * active_j
    check_positive(sample_period_seconds, "sample_period_seconds")
    if compute_seconds > sample_period_seconds:
        raise ConfigurationError(
            f"compute time {compute_seconds:.3f}s exceeds the sampling "
            f"period {sample_period_seconds:.3f}s — the device cannot keep up."
        )
    idle_j = power.idle_watts * (sample_period_seconds - compute_seconds)
    return 1e3 * (active_j + idle_j)


def battery_life_hours(
    power: PowerProfile,
    compute_seconds: float,
    sample_period_seconds: float,
    *,
    battery_wh: float = 10.0,
) -> float:
    """Hours a ``battery_wh`` watt-hour battery sustains the duty cycle."""
    check_positive(battery_wh, "battery_wh")
    mj = energy_per_sample_mj(
        power, compute_seconds, sample_period_seconds=sample_period_seconds
    )
    joules_per_second = (mj / 1e3) / sample_period_seconds
    return battery_wh * 3600.0 / joules_per_second / 3600.0
