"""Precision-reduction simulation for MCU deployment.

The library computes in float64 for reproducibility, but a Raspberry Pi
Pico deployment would store state in float32 (half the RAM of Table 4's
accounts) or even float16. This module simulates that choice: it rounds a
pipeline's learned state through a lower precision and returns a
fully-functional copy, so the accuracy cost of quantisation can be
measured before committing firmware to a format.

Only *storage* is quantised (weights, centroids, thresholds round-trip
through the target dtype); arithmetic still runs in float64, matching an
MCU that loads compact weights into a wider accumulator.
"""

from __future__ import annotations

import copy
from typing import Literal

import numpy as np

from ..core.coords import CentroidSet
from ..core.pipeline import ProposedPipeline
from ..oselm.ensemble import MultiInstanceModel
from ..telemetry import get_telemetry
from ..utils.exceptions import ConfigurationError

__all__ = ["quantize_array", "quantize_model", "quantize_pipeline", "state_bytes_at"]

DType = Literal["float64", "float32", "float16"]
_DTYPES = {"float64": np.float64, "float32": np.float32, "float16": np.float16}
_BYTES = {"float64": 8, "float32": 4, "float16": 2}


def _check(dtype: str) -> np.dtype:
    if dtype not in _DTYPES:
        raise ConfigurationError(
            f"dtype must be one of {sorted(_DTYPES)}, got {dtype!r}."
        )
    return np.dtype(_DTYPES[dtype])


def quantize_array(a: np.ndarray, dtype: DType) -> np.ndarray:
    """Round-trip ``a`` through ``dtype``; result is float64 again.

    float16 saturates beyond ±65504 — out-of-range values raise rather
    than silently becoming inf (a corrupted deployment is worse than a
    refused one).
    """
    target = _check(dtype)
    a = np.asarray(a, dtype=np.float64)
    with np.errstate(over="ignore"):  # overflow is diagnosed explicitly below
        out = a.astype(target).astype(np.float64)
    if not np.all(np.isfinite(out)):
        raise ConfigurationError(
            f"values overflow {dtype}; rescale the model before quantising."
        )
    return out


def quantize_model(model: MultiInstanceModel, dtype: DType) -> MultiInstanceModel:
    """Deep-copied model whose stored state went through ``dtype``.

    Quantises each instance's random layer (α, b), output weights β, and
    RLS matrix P. The original model is untouched.
    """
    _check(dtype)
    q = copy.deepcopy(model)
    for inst in q.instances:
        core = inst.core
        layer = core.layer
        w = quantize_array(layer.weights, dtype)
        b = quantize_array(layer.biases, dtype)
        w.setflags(write=False)
        b.setflags(write=False)
        layer.weights = w
        layer.biases = b
        if core.is_fitted:
            core.beta = quantize_array(core.beta, dtype)
            core.P = quantize_array(core.P, dtype)
    return q


def quantize_pipeline(pipeline: ProposedPipeline, dtype: DType) -> ProposedPipeline:
    """Deep-copied proposed pipeline with all stored state quantised.

    Covers the model (via :func:`quantize_model` semantics), the centroid
    matrices, and the calibrated thresholds.
    """
    _check(dtype)
    q = copy.deepcopy(pipeline)
    for inst in q.model.instances:
        core = inst.core
        w = quantize_array(core.layer.weights, dtype)
        b = quantize_array(core.layer.biases, dtype)
        w.setflags(write=False)
        b.setflags(write=False)
        core.layer.weights = w
        core.layer.biases = b
        if core.is_fitted:
            core.beta = quantize_array(core.beta, dtype)
            core.P = quantize_array(core.P, dtype)
    cents: CentroidSet = q.detector.centroids
    trained = quantize_array(cents.trained, dtype)
    trained.setflags(write=False)
    cents.trained = trained
    cents.recent = quantize_array(cents.recent, dtype)
    det = q.detector
    det.theta_drift = float(quantize_array(np.array([det.theta_drift]), dtype)[0])
    det.theta_error = float(quantize_array(np.array([det.theta_error]), dtype)[0])
    tel = get_telemetry()
    if tel.enabled:
        tel.emit(
            "pipeline_quantized",
            dtype=dtype,
            state_bytes=q.model.state_nbytes() + q.state_nbytes(),
        )
    return q


def state_bytes_at(n_values: int, dtype: DType) -> int:
    """Bytes to store ``n_values`` numbers at ``dtype`` (deployment sizing)."""
    _check(dtype)
    if n_values < 0:
        raise ConfigurationError("n_values must be non-negative.")
    return int(n_values) * _BYTES[dtype]
