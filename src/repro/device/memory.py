"""Byte-exact resident-memory models — the substance behind Table 4.

The paper's memory argument is structural: batch detectors must keep whole
sample windows resident ("data samples are stored in the device memory to
detect concept drifts"), while the proposed method keeps only two C×D
centroid matrices. This module makes those accounts explicit and auditable:
each function returns a per-component breakdown (bytes) plus the total, and
:func:`fits_on` checks a method against a device's RAM — reproducing the
paper's observation that Quant Tree and SPLL cannot run on the 264 kB
Raspberry Pi Pico while the proposed method can.

Two accounting modes exist:

* the **analytic** functions below, parameterised by the experiment
  configuration (used for Table 4 — deterministic, implementation-free);
* the live ``state_nbytes()`` methods on detectors/pipelines (used in
  tests to confirm the analytic model matches the implementation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_positive
from .profiles import DeviceProfile

__all__ = [
    "MemoryReport",
    "FLOAT_BYTES",
    "quanttree_memory",
    "spll_memory",
    "proposed_memory",
    "discriminative_model_memory",
    "fits_on",
]

#: All resident state is double precision, as in the reference pipelines.
FLOAT_BYTES = 8
#: One Quant Tree split: dimension index (4B) + threshold (8B) + direction (1B).
_SPLIT_BYTES = 13


@dataclass(frozen=True)
class MemoryReport:
    """Breakdown of one method's resident detector state."""

    method: str
    components: Dict[str, int]

    @property
    def total_bytes(self) -> int:
        return int(sum(self.components.values()))

    @property
    def total_kb(self) -> float:
        """Kilobytes (factor 1000, as in the paper's Table 4)."""
        return self.total_bytes / 1000.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v}" for k, v in self.components.items())
        return f"{self.method}: {self.total_kb:.1f} kB ({parts})"


def quanttree_memory(
    batch_size: int, n_features: int, n_bins: int
) -> MemoryReport:
    """Quant Tree resident state: batch buffer + tree + bin probabilities.

    The dominant term is the ν×D sample buffer the streaming detector must
    fill before it can test — the histogram itself is tiny (that is Quant
    Tree's selling point: size independent of D).
    """
    check_positive(batch_size, "batch_size")
    check_positive(n_features, "n_features")
    check_positive(n_bins, "n_bins")
    return MemoryReport(
        "quanttree",
        {
            "batch_buffer": batch_size * n_features * FLOAT_BYTES,
            "splits": (n_bins - 1) * _SPLIT_BYTES,
            "bin_probabilities": n_bins * FLOAT_BYTES,
            "bin_counts": n_bins * FLOAT_BYTES,
        },
    )


def spll_memory(
    batch_size: int,
    n_features: int,
    n_clusters: int,
    *,
    reference_size: int | None = None,
    covariance: str = "diag",
) -> MemoryReport:
    """SPLL resident state: reference window + batch buffer + cluster model.

    The symmetric criterion ``max(SPLL(W1→W2), SPLL(W2→W1))`` re-scores
    the reference window against clusters fitted on every test batch, so
    the reference window itself must stay resident — SPLL therefore holds
    *two* full windows (the paper's 1 933 kB ≈ 2 × 235 × 511 × 8 B).
    ``reference_size`` defaults to ``batch_size`` (equal windows, as in
    Kuncheva's formulation).
    """
    check_positive(batch_size, "batch_size")
    check_positive(n_features, "n_features")
    check_positive(n_clusters, "n_clusters")
    ref = batch_size if reference_size is None else int(reference_size)
    check_positive(ref, "reference_size")
    if covariance == "diag":
        cov_bytes = n_features * FLOAT_BYTES
    elif covariance == "full":
        cov_bytes = n_features * n_features * FLOAT_BYTES
    else:
        raise ConfigurationError(f"covariance must be 'diag' or 'full', got {covariance!r}.")
    return MemoryReport(
        "spll",
        {
            "reference_window": ref * n_features * FLOAT_BYTES,
            "batch_buffer": batch_size * n_features * FLOAT_BYTES,
            "cluster_means": 2 * n_clusters * n_features * FLOAT_BYTES,
            "pooled_covariance": 2 * cov_bytes,
        },
    )


def proposed_memory(n_labels: int, n_features: int) -> MemoryReport:
    """Proposed method's resident state: two C×D centroid matrices + counts.

    No sample is ever stored — the entire footprint is the trained and
    recent coordinates plus per-label counters and a few scalars
    (thresholds, window counter, flags).
    """
    check_positive(n_labels, "n_labels")
    check_positive(n_features, "n_features")
    return MemoryReport(
        "proposed",
        {
            "trained_centroids": n_labels * n_features * FLOAT_BYTES,
            "recent_centroids": n_labels * n_features * FLOAT_BYTES,
            "counts": n_labels * FLOAT_BYTES,
            "scalars": 6 * FLOAT_BYTES,
        },
    )


def discriminative_model_memory(
    n_labels: int,
    n_features: int,
    n_hidden: int,
    *,
    alpha_in_flash: bool = False,
) -> MemoryReport:
    """OS-ELM ensemble state shared by *every* evaluated method.

    Per instance: random weights α (D×H) and biases (H) — constants, so an
    MCU deployment keeps them in flash (``alpha_in_flash=True``, execute
    in place) rather than RAM — plus the *mutable* output weights β (H×D)
    and RLS matrix P (H×H), which must be RAM-resident. Reported
    separately from the detector accounts because all five methods carry
    it identically.
    """
    check_positive(n_labels, "n_labels")
    check_positive(n_features, "n_features")
    check_positive(n_hidden, "n_hidden")
    mutable = (
        n_hidden * n_features * FLOAT_BYTES      # beta
        + n_hidden * n_hidden * FLOAT_BYTES      # P
    )
    constant = (
        n_features * n_hidden * FLOAT_BYTES      # alpha
        + n_hidden * FLOAT_BYTES                 # bias
    )
    components = {"instances_mutable": n_labels * mutable}
    if alpha_in_flash:
        components["instances_flash"] = 0
    else:
        components["instances_constant"] = n_labels * constant
    return MemoryReport("oselm_model", components)


def fits_on(report: MemoryReport, device: DeviceProfile, *, model: MemoryReport | None = None) -> bool:
    """Whether the detector state (plus optional model state) fits in RAM."""
    total = report.total_bytes + (model.total_bytes if model is not None else 0)
    return device.fits(total)
