"""Latency estimation — Tables 5 and 6 from op counts × device profiles.

Two granularities:

* :func:`stage_latency_table` — per-sample milliseconds for each of the
  proposed method's six stages (Table 6) on a given device;
* :class:`PhaseTally` + :func:`estimate_stream_seconds` — total seconds to
  process a stream (Table 5): the evaluation harness records which phase
  each sample passed through (predict / check / reconstruction phases /
  batch-detector buffering), this module weights those counts with the
  per-stage costs.

Batch-detector per-batch costs (Quant Tree's histogram test, SPLL's
per-batch k-means — the reason SPLL dominates Table 5) are modelled by
:func:`quanttree_batch_ops` and :func:`spll_batch_ops`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable

from ..core.pipeline import StepRecord
from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_positive
from .opcount import OpCount, StageCostModel
from .profiles import DeviceProfile

__all__ = [
    "stage_latency_table",
    "PhaseTally",
    "estimate_stream_seconds",
    "quanttree_batch_ops",
    "spll_batch_ops",
]


def stage_latency_table(
    model: StageCostModel, device: DeviceProfile
) -> Dict[str, float]:
    """Per-sample stage latencies in milliseconds (Table 6's layout)."""
    return {
        name: device.ms_for_flops(ops.flops)
        for name, ops in model.table6_rows().items()
    }


@dataclass
class PhaseTally:
    """Per-phase sample counts extracted from a pipeline run."""

    counts: Counter = field(default_factory=Counter)

    @classmethod
    def from_records(cls, records: Iterable[StepRecord]) -> "PhaseTally":
        """Tally the ``phase`` field over a run's step records."""
        tally = cls()
        for rec in records:
            tally.counts[rec.phase] += 1
        return tally

    @property
    def total(self) -> int:
        return sum(self.counts.values())


def _phase_ops(model: StageCostModel) -> Dict[str, OpCount]:
    """Per-sample op cost of each pipeline phase.

    Every streamed sample is predicted (Algorithm 1 line 6) except inside
    reconstruction, where the phase cost already includes the relevant
    forward passes. ``check`` adds the centroid/distance update of lines
    12-14. Reconstruction phases compose Algorithm 2's overlapping steps:
    the ``search`` phase runs Init_Coord + Update_Coord + centroid-labelled
    training, ``update`` drops the Init_Coord, and so on.
    """
    pred = model.label_prediction()
    # Centroid-labelled training still needs one forward pass to produce
    # the h/residual the cached rank-1 update consumes (Table 6 prices
    # that forward in the prediction row; stream totals must include it).
    train_centroid = model.autoencoder_forward() + model.retraining_without_prediction()
    return {
        "predict": pred,
        "train": pred + model.oselm_train_cached(),  # ONLAD's every-sample update
        "check": pred + model.distance_computation(),
        "search": model.init_coord() + model.update_coord() + train_centroid,
        "update": model.update_coord() + train_centroid,
        "train_centroid": train_centroid,
        "train_predict": model.retraining_with_prediction(),
        "finish": OpCount(),
        "refit": pred + OpCount(moves=model.D),  # buffer the sample for refitting
    }


def estimate_stream_seconds(
    tally: PhaseTally,
    model: StageCostModel,
    device: DeviceProfile,
    *,
    per_batch_ops: OpCount | None = None,
    n_batches: int = 0,
) -> float:
    """Total estimated wall-clock seconds for a tallied stream run.

    ``per_batch_ops``/``n_batches`` add the batch-detector tests that are
    not visible as per-sample phases (Quant Tree / SPLL statistics).
    """
    phase_ops = _phase_ops(model)
    total_flops = 0.0
    for phase, n in tally.counts.items():
        if phase not in phase_ops:
            raise ConfigurationError(f"unknown pipeline phase {phase!r}.")
        total_flops += n * phase_ops[phase].flops
    if per_batch_ops is not None and n_batches > 0:
        total_flops += n_batches * per_batch_ops.flops
    return device.seconds_for_flops(total_flops)


def quanttree_batch_ops(batch_size: int, n_bins: int) -> OpCount:
    """One Quant Tree batch test: per-sample tree traversal + Pearson.

    Traversal is at most ``n_bins - 1`` scalar compares per sample; the
    Pearson statistic is K subtract/multiply/divide terms.
    """
    check_positive(batch_size, "batch_size")
    check_positive(n_bins, "n_bins")
    return OpCount(
        cmps=batch_size * (n_bins - 1),
        adds=batch_size + 2 * n_bins,
        muls=n_bins,
        divs=n_bins,
    )


def spll_batch_ops(
    batch_size: int,
    n_features: int,
    n_clusters: int,
    *,
    reference_size: int | None = None,
    kmeans_iters: int = 10,
    kmeans_restarts: int = 2,
    symmetric: bool = True,
) -> OpCount:
    """One SPLL batch test: k-means on the test window + Mahalanobis scoring.

    The per-batch k-means (``restarts × iters × n × c × D`` MACs) is the
    structural reason SPLL's execution time dwarfs Quant Tree's in Table 5
    ("Since SPLL executes k-means clustering, the execution time of SPLL
    is increased compared to the others").
    """
    check_positive(batch_size, "batch_size")
    check_positive(n_features, "n_features")
    check_positive(n_clusters, "n_clusters")
    ref = batch_size if reference_size is None else int(reference_size)
    n, d, c = batch_size, n_features, n_clusters
    # Forward direction: score the batch against the reference model.
    score_fwd = OpCount(macs=n * c * d, adds=n * c * d, cmps=n * c)
    ops = score_fwd
    if symmetric:
        kmeans = OpCount(
            macs=kmeans_restarts * kmeans_iters * n * c * d,
            adds=kmeans_restarts * kmeans_iters * n * c,
        )
        pooled_cov = OpCount(macs=n * d, adds=n * d)
        score_rev = OpCount(macs=ref * c * d, adds=ref * c * d, cmps=ref * c)
        ops = ops + kmeans + pooled_cov + score_rev
    return ops
