"""Live memory measurement via :mod:`tracemalloc`.

The paper measured Table 4 on a running process; our primary account is
the analytic model in :mod:`repro.device.memory`, but this tracer provides
the corresponding *live* measurement for cross-checking: it snapshots
Python allocations around a detector's construction + fitting + streaming
so the growth attributable to the method can be compared with the analytic
prediction (the integration tests assert they agree on the dominant
terms).
"""

from __future__ import annotations

import gc
import tracemalloc
from dataclasses import dataclass
from typing import Callable, TypeVar

from ..utils.exceptions import ConfigurationError

__all__ = ["AllocationReport", "measure_allocations"]

T = TypeVar("T")


@dataclass(frozen=True)
class AllocationReport:
    """Outcome of one traced execution.

    Attributes
    ----------
    result:
        Whatever the traced callable returned.
    current_bytes:
        Net allocation still live after the call (the resident state).
    peak_bytes:
        Peak allocation during the call (transient working memory —
        batch detectors spike here even when their resident state is
        modest).
    """

    result: object
    current_bytes: int
    peak_bytes: int

    @property
    def current_kb(self) -> float:
        return self.current_bytes / 1000.0

    @property
    def peak_kb(self) -> float:
        return self.peak_bytes / 1000.0


def measure_allocations(fn: Callable[[], T]) -> AllocationReport:
    """Run ``fn`` under tracemalloc and report net/peak allocations.

    The traced region covers exactly the callable; pre-existing objects
    are not counted (the trace starts after a full collection). Nesting
    traced regions is not supported.
    """
    if not callable(fn):
        raise ConfigurationError("measure_allocations expects a callable.")
    if tracemalloc.is_tracing():
        raise ConfigurationError("tracemalloc is already active; nesting unsupported.")
    gc.collect()
    tracemalloc.start()
    try:
        result = fn()
        gc.collect()
        current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return AllocationReport(result=result, current_bytes=int(current), peak_bytes=int(peak))
