"""Edge-device profiles — Table 1's two boards as analytic cost models.

A :class:`DeviceProfile` reduces a board to the constants the paper's
latency/memory evaluation actually exercises: clock rate, an effective
cycles-per-floating-point-operation constant, and RAM size.

``cycles_per_flop`` is *calibrated*, not derived from datasheets: the
Raspberry Pi Pico constant is pinned so that the label-prediction stage of
the paper's configuration (C=2 autoencoder instances, D=511, H=22)
reproduces Table 6's 148.87 ms; the Raspberry Pi 4 constant is pinned so
the no-detection baseline over 700 samples reproduces Table 5's 1.05 s.
Every other stage/row is then *predicted* by the op-count model — that is
the reproduction claim the device benches check (see EXPERIMENTS.md).

The Cortex-M0+ has no FPU, so every double-precision operation runs in
software (hundreds of cycles) — this is why the calibrated Pico constant
is ~200 cycles/flop while the A72's effective constant is tens of cycles
(superscalar NEON pipelines amortised over interpreter overhead).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.exceptions import ConfigurationError

__all__ = ["DeviceProfile", "RASPBERRY_PI_4", "RASPBERRY_PI_PICO"]


@dataclass(frozen=True)
class DeviceProfile:
    """Analytic model of one target device.

    Attributes
    ----------
    name:
        Board name for reports.
    cpu:
        Core description (Table 1's CPU row).
    clock_hz:
        Core clock.
    cycles_per_flop:
        Effective cycles per double-precision floating-point operation,
        including load/store and loop overhead (calibrated; see module
        docstring).
    ram_bytes:
        Total RAM available to the application (Table 1's RAM row).
    has_fpu:
        Informational flag (explains the cycles_per_flop magnitude).
    """

    name: str
    cpu: str
    clock_hz: float
    cycles_per_flop: float
    ram_bytes: int
    has_fpu: bool

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.cycles_per_flop <= 0 or self.ram_bytes <= 0:
            raise ConfigurationError(
                "clock_hz, cycles_per_flop, and ram_bytes must be positive."
            )

    def seconds_for_flops(self, flops: float) -> float:
        """Wall-clock seconds to execute ``flops`` floating-point ops."""
        if flops < 0:
            raise ConfigurationError("flops must be non-negative.")
        return flops * self.cycles_per_flop / self.clock_hz

    def ms_for_flops(self, flops: float) -> float:
        """Milliseconds to execute ``flops`` floating-point ops."""
        return 1e3 * self.seconds_for_flops(flops)

    def fits(self, nbytes: int) -> bool:
        """Whether a resident state of ``nbytes`` fits in RAM."""
        return nbytes <= self.ram_bytes


#: Raspberry Pi 4 Model B (Table 1): Cortex-A72 @ 1.5 GHz, 4 GB RAM.
#: cycles_per_flop calibrated so 700 × label-prediction = Table 5's 1.05 s.
RASPBERRY_PI_4 = DeviceProfile(
    name="Raspberry Pi 4 Model B",
    cpu="ARM Cortex-A72, 1.5GHz",
    clock_hz=1.5e9,
    cycles_per_flop=24.6,
    ram_bytes=4 * 1024**3,
    has_fpu=True,
)

#: Raspberry Pi Pico (Table 1): Cortex-M0+ @ 133 MHz, 264 kB RAM, no FPU.
#: cycles_per_flop calibrated so one label prediction = Table 6's 148.87 ms.
RASPBERRY_PI_PICO = DeviceProfile(
    name="Raspberry Pi Pico",
    cpu="ARM Cortex-M0+, 133MHz",
    clock_hz=133e6,
    cycles_per_flop=218.0,
    ram_bytes=264 * 1024,
    has_fpu=False,
)
