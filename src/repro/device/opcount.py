"""Operation counting for every stage of the proposed method.

The Raspberry-Pi-Pico latency analysis (Table 6) breaks one processed
sample into six stages. This module derives each stage's floating-point
operation count from the algorithm structure, parameterised by the model
geometry ``(C, D, H)`` — number of labels, feature dimensionality, hidden
width. Counts are *structural*: they follow from Algorithms 1-4 and the
OS-ELM rank-1 update, with two documented implementation assumptions:

* **Per-instance random layers.** Each of the ``C`` autoencoder instances
  has its own hidden layer, so label prediction runs ``C`` full forwards.
* **Same-sample caching.** When a sample is both predicted and then used
  for a training step (Algorithm 2's retraining phases), the hidden
  activation ``h`` and the reconstruction residual are reused from the
  forward pass instead of being recomputed — the natural on-device
  implementation, and the only reading under which Table 6's "retraining
  without label prediction" (25.42 ms) can be far cheaper than a forward
  pass (148.87 ms).

Costs are expressed in "flops", where one multiply-accumulate counts as 2
and one transcendental (sigmoid's exp + divide) as ``EXP_FLOPS``. A
:class:`DeviceProfile` then maps flops to milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..utils.validation import check_positive

__all__ = ["EXP_FLOPS", "OpCount", "StageCostModel"]

#: Flops charged per sigmoid evaluation (software exp + add + divide).
EXP_FLOPS = 24.0


@dataclass(frozen=True)
class OpCount:
    """Structured operation tally for one algorithm stage.

    ``macs`` are multiply-accumulates (2 flops each); the remaining fields
    are single-flop scalar operations; ``exps`` are sigmoid evaluations
    (``EXP_FLOPS`` each); ``moves`` are word copies (charged 0.25 flop —
    loads/stores overlap with arithmetic on in-order cores but are not
    free).
    """

    macs: float = 0.0
    adds: float = 0.0
    muls: float = 0.0
    divs: float = 0.0
    abs_: float = 0.0
    cmps: float = 0.0
    exps: float = 0.0
    moves: float = 0.0

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, k: float) -> "OpCount":
        """Every field multiplied by ``k`` (e.g. per-batch → per-stream)."""
        return OpCount(**{f.name: k * getattr(self, f.name) for f in fields(self)})

    @property
    def flops(self) -> float:
        """Weighted single-precision-equivalent flop total."""
        return (
            2.0 * self.macs
            + self.adds
            + self.muls
            + 4.0 * self.divs  # software division is several flops even amortised
            + self.abs_
            + self.cmps
            + EXP_FLOPS * self.exps
            + 0.25 * self.moves
        )


class StageCostModel:
    """Per-stage op counts for the proposed method at geometry ``(C, D, H)``.

    Stage names mirror Table 6's rows; each method returns an
    :class:`OpCount` for processing **one sample** in that stage.
    """

    def __init__(self, n_labels: int, n_features: int, n_hidden: int) -> None:
        check_positive(n_labels, "n_labels")
        check_positive(n_features, "n_features")
        check_positive(n_hidden, "n_hidden")
        self.C = int(n_labels)
        self.D = int(n_features)
        self.H = int(n_hidden)

    # -- discriminative model ------------------------------------------------------

    def autoencoder_forward(self) -> OpCount:
        """One instance's forward pass + reconstruction-error score."""
        C, D, H = self.C, self.D, self.H
        return OpCount(
            macs=D * H + H * D,     # hidden = x·α ; output = h·β
            adds=H + D,             # biases + error accumulation
            muls=D,                 # squared residual (mse)
            abs_=0.0,
            exps=H,                 # sigmoid activations
            moves=D,                # residual staging
        )

    def label_prediction(self) -> OpCount:
        """Table 6 row 1 — Algorithm 1 line 6: argmin over C forwards."""
        ops = OpCount()
        for _ in range(self.C):
            ops = ops + self.autoencoder_forward()
        return ops + OpCount(cmps=self.C)

    # -- Algorithm 1 lines 12-14 ------------------------------------------------------

    def distance_computation(self) -> OpCount:
        """Table 6 row 2 — recent-centroid update + L1 drift rate.

        Covers lines 12-14: the sequential mean update of one label's
        centroid (D mul-add-div) and the full C×D L1 distance sum.
        """
        C, D = self.C, self.D
        return OpCount(
            muls=D,               # cor·num
            adds=D + C * D,       # +data ; distance accumulation
            divs=D,               # /(num+1)
            abs_=C * D,
            moves=D,
        )

    # -- OS-ELM rank-1 training (h, residual cached from the forward pass) -------------

    def oselm_train_cached(self) -> OpCount:
        """Rank-1 RLS update given cached ``h`` and residual.

        ``Ph = P h`` (H² MACs), the scalar gain, ``β += k·err`` (H·D MACs),
        ``P -= k·Phᵀ`` (H² MACs).
        """
        D, H = self.D, self.H
        return OpCount(
            macs=H * H + H * D + H * H,
            adds=H + 1,
            divs=H,                # k = Ph / denom
            moves=H,
        )

    def retraining_without_prediction(self) -> OpCount:
        """Table 6 row 3 — Algorithm 2 lines 8-9.

        Label = nearest centroid (C·D L1 + compare), then one cached
        rank-1 training step. The hidden activation and residual are
        assumed cached from the sample's stream-entry forward pass (whose
        cost Table 6 prices in the "Label prediction" row) — the only
        reading under which the paper's 25.42 ms row can be far cheaper
        than a 148.87 ms forward pass.
        """
        C, D = self.C, self.D
        nearest = OpCount(adds=C * D, abs_=C * D, cmps=C)
        return nearest + self.oselm_train_cached()

    def retraining_with_prediction(self) -> OpCount:
        """Table 6 row 4 — Algorithm 2 lines 11-12.

        A full C-instance label prediction, then a cached rank-1 training
        step on the winning instance (its ``h`` and residual come from
        the prediction pass).
        """
        return self.label_prediction() + self.oselm_train_cached()

    # -- Algorithms 3-4 -------------------------------------------------------------------

    def init_coord(self) -> OpCount:
        """Table 6 row 5 — Algorithm 3's spread-maximising adoption.

        One baseline pairwise-distance sum plus C candidate evaluations,
        each a full pairwise sum over C(C-1)/2 coordinate pairs, plus the
        D-word swap in/out per candidate.
        """
        C, D = self.C, self.D
        pair_sum = OpCount(adds=(C * (C - 1) // 2) * D, abs_=(C * (C - 1) // 2) * D)
        ops = pair_sum  # line 3 baseline
        for _ in range(C):
            ops = ops + pair_sum + OpCount(moves=2 * D, cmps=1)
        return ops + OpCount(moves=D)  # final adoption write

    def update_coord(self) -> OpCount:
        """Table 6 row 6 — Algorithm 4: L1 argmin + sequential mean update."""
        C, D = self.C, self.D
        return OpCount(
            adds=C * D + D,
            abs_=C * D,
            cmps=C,
            muls=D,
            divs=D,
            moves=D,
        )

    # -- aggregates ---------------------------------------------------------------------------

    def table6_rows(self) -> dict[str, OpCount]:
        """All six Table 6 stages, keyed by the paper's row labels."""
        return {
            "Label prediction": self.label_prediction(),
            "Distance computation": self.distance_computation(),
            "Model retraining without label prediction": self.retraining_without_prediction(),
            "Model retraining with label prediction": self.retraining_with_prediction(),
            "Label coordinates initialization": self.init_coord(),
            "Label coordinates update": self.update_coord(),
        }
