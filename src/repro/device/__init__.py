"""Edge-device simulation: cost profiles, op counting, memory & latency models."""

from .memory import (
    FLOAT_BYTES,
    MemoryReport,
    discriminative_model_memory,
    fits_on,
    proposed_memory,
    quanttree_memory,
    spll_memory,
)
from .opcount import EXP_FLOPS, OpCount, StageCostModel
from .energy import PI4_POWER, PICO_POWER, PowerProfile, battery_life_hours, energy_per_sample_mj
from .quantize import quantize_array, quantize_model, quantize_pipeline, state_bytes_at
from .profiles import RASPBERRY_PI_4, RASPBERRY_PI_PICO, DeviceProfile
from .tracer import AllocationReport, measure_allocations
from .timing import (
    PhaseTally,
    estimate_stream_seconds,
    quanttree_batch_ops,
    spll_batch_ops,
    stage_latency_table,
)

__all__ = [
    "DeviceProfile",
    "RASPBERRY_PI_4",
    "RASPBERRY_PI_PICO",
    "OpCount",
    "StageCostModel",
    "EXP_FLOPS",
    "MemoryReport",
    "FLOAT_BYTES",
    "quanttree_memory",
    "spll_memory",
    "proposed_memory",
    "discriminative_model_memory",
    "fits_on",
    "PhaseTally",
    "estimate_stream_seconds",
    "stage_latency_table",
    "quanttree_batch_ops",
    "spll_batch_ops",
    "PowerProfile",
    "PI4_POWER",
    "PICO_POWER",
    "energy_per_sample_mj",
    "battery_life_hours",
    "quantize_array",
    "quantize_model",
    "quantize_pipeline",
    "state_bytes_at",
    "AllocationReport",
    "measure_allocations",
]
