"""``python -m repro`` — dispatch to the CLI experiment runner."""

import sys

from .cli import main

sys.exit(main())
