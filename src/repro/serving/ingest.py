"""The async ingestion core: sequenced lanes in, arrival windows out.

This module refactors the fleet's *submit path* into two halves joined
by bounded queues:

* **offer side** (any thread, e.g. the HTTP front-end's loop): a chunk
  arrives as an envelope ``(device_id, seq, Xc, yc)``. Each device has a
  **lane** — a bounded in-order queue plus a small out-of-order *stash*.
  ``seq`` is the device's monotone chunk counter starting at 0; a chunk
  up to ``gap_window`` ahead of the expected sequence is admitted and
  stashed until the gap fills, a replayed or in-stash sequence is
  refused as a duplicate, and anything beyond the window is refused
  outright (the client must resync). Admission control
  (:class:`~repro.serving.admission.AdmissionController`) can refuse
  chunks *before* they take a lane slot — refused chunks were never
  admitted, so they owe no results.

* **dispatch side** (one internal thread, the only place the fleet
  manager is ever touched while serving): lanes release envelopes
  strictly in sequence; the dispatcher collects released chunks
  round-robin across lanes into an *arrival window* and feeds it to
  :meth:`~repro.fleet.manager.FleetManager.submit_many` — so PR 8's
  cross-session batched scoring keeps forming its windows under network
  arrivals exactly as it does under a soak loop. Completions are
  published as :class:`IngestResult` tickets per device.

Because every lane releases in sequence order and per-device order is
the *only* order the byte-identity contract needs (cross-device order
carries no meaning — see ``docs/fleet.md``), any arrival timing,
reordering within the gap window, and any window cutting yield records
byte-identical to the offline soak. ``tests/test_serving_golden.py``
pins this across all five pipelines.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

import numpy as np

from ..engine.spec import ExperimentSpec
from ..utils.exceptions import ConfigurationError
from ..utils.hooks import default_telemetry
from .admission import AdmissionController

__all__ = ["ChunkEnvelope", "IngestCore", "IngestResult", "Offer", "OfferStatus"]

#: Ingest latency histogram edges (seconds): arrival -> records published.
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)


class OfferStatus(str, Enum):
    """Fate of one offered chunk (maps 1:1 onto front-end HTTP codes)."""

    ACCEPTED = "accepted"        # admitted, in sequence -> 202
    BUFFERED = "buffered"        # admitted, stashed inside the gap window -> 202
    DUPLICATE = "duplicate"      # seq already admitted -> 409
    GAP_OVERFLOW = "gap_overflow"  # seq beyond the gap window -> 422
    QUEUE_FULL = "queue_full"    # lane at capacity -> 429 + Retry-After
    THROTTLED = "throttled"      # ladder SANITIZING -> 429 + Retry-After
    SHED = "shed"                # ladder PASSTHROUGH, low priority -> 503
    REJECTED = "rejected"        # ladder FROZEN (or core stopping) -> 503
    UNKNOWN_DEVICE = "unknown_device"  # -> 404

    @property
    def admitted(self) -> bool:
        return self in (OfferStatus.ACCEPTED, OfferStatus.BUFFERED)


@dataclass(frozen=True)
class Offer:
    """Synchronous reply to :meth:`IngestCore.offer`."""

    status: OfferStatus
    ticket: Optional[int] = None
    retry_after: Optional[float] = None
    detail: str = ""

    @property
    def admitted(self) -> bool:
        return self.status.admitted


@dataclass
class ChunkEnvelope:
    """One admitted chunk riding a lane toward the dispatcher."""

    device_id: str
    seq: int
    Xc: np.ndarray
    yc: np.ndarray
    ticket: int
    arrived_at: float


@dataclass(frozen=True)
class IngestResult:
    """Completion ticket for one dispatched chunk.

    ``records``/``drifts`` are counts (``None`` when the engine ran in
    worker processes — a sharded fleet returns per-shard totals, not
    per-chunk records — or when the dispatch failed; ``error`` says
    which). ``latency_seconds`` spans admission to completion.
    """

    ticket: int
    device_id: str
    seq: int
    samples: int
    records: Optional[int]
    drifts: Optional[int]
    latency_seconds: float
    error: Optional[str] = None

    def to_json(self) -> dict:
        return {
            "ticket": self.ticket,
            "device": self.device_id,
            "seq": self.seq,
            "samples": self.samples,
            "records": self.records,
            "drifts": self.drifts,
            "latency_seconds": self.latency_seconds,
            "error": self.error,
        }


class _Lane:
    """Per-device sequencing state (guarded by the core's lock)."""

    __slots__ = ("next_seq", "ready", "stash", "inflight", "results")

    def __init__(self) -> None:
        self.next_seq = 0
        self.ready: deque = deque()
        self.stash: Dict[int, ChunkEnvelope] = {}
        self.inflight = 0
        self.results: deque = deque()

    @property
    def pending(self) -> int:
        return len(self.ready) + len(self.stash)


class IngestCore:
    """Bounded, sequenced ingestion in front of a fleet manager.

    Parameters
    ----------
    manager:
        A :class:`~repro.fleet.manager.FleetManager` or
        :class:`~repro.fleet.sharding.ShardedFleetManager`. All manager
        access happens on the dispatcher thread while the core runs;
        after :meth:`stop` the caller may touch it again.
    queue_capacity:
        Per-device lane bound (ready + stashed). A full lane refuses
        chunks with ``QUEUE_FULL`` and feeds the admission ladder.
    gap_window:
        How far ahead of the expected sequence a chunk may arrive and
        still be admitted (stashed). 0 = strict in-order.
    window_chunks:
        Dispatch window cap — at most this many chunks are handed to one
        ``submit_many`` call.
    admission:
        The :class:`AdmissionController`; a default one is built when
        omitted.
    """

    def __init__(
        self,
        manager,
        *,
        queue_capacity: int = 64,
        gap_window: int = 32,
        window_chunks: int = 256,
        admission: Optional[AdmissionController] = None,
        telemetry=None,
    ) -> None:
        if int(queue_capacity) < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {queue_capacity!r}."
            )
        if int(gap_window) < 0:
            raise ConfigurationError(
                f"gap_window must be >= 0, got {gap_window!r}."
            )
        if int(window_chunks) < 1:
            raise ConfigurationError(
                f"window_chunks must be >= 1, got {window_chunks!r}."
            )
        self.manager = manager
        self.queue_capacity = int(queue_capacity)
        self.gap_window = int(gap_window)
        self.window_chunks = int(window_chunks)
        self.telemetry = telemetry if telemetry is not None else default_telemetry()
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(telemetry=self.telemetry)
        )
        self._lanes: "OrderedDict[str, _Lane]" = OrderedDict()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._thread: Optional[threading.Thread] = None
        self._stopping = False
        self._next_ticket = 0
        #: dispatch failures (windows that raised), for the soak report.
        self.dispatch_failures = 0
        self._completed = 0
        self._admitted = 0

    # -- registration / lifecycle ----------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    def register(self, device_id: str, spec: ExperimentSpec) -> None:
        """Add a device before serving starts (its lane begins at seq 0)."""
        if self.running:
            raise ConfigurationError(
                "register devices before start() — the dispatcher owns the "
                "manager while the core runs."
            )
        device_id = str(device_id)
        if device_id in self._lanes:
            raise ConfigurationError(f"device {device_id!r} already registered.")
        self.manager.add_device(device_id, spec)
        self._lanes[device_id] = _Lane()

    def start(self) -> "IngestCore":
        if self._thread is not None:
            return self
        self._stopping = False
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-ingest-dispatch", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Dispatch what is already released, then stop the dispatcher.

        New offers are refused (``REJECTED``) once stopping. Stashed
        chunks whose gap never filled stay stashed — see
        :meth:`finish_all`.
        """
        thread = self._thread
        if thread is None:
            return
        with self._lock:
            self._stopping = True
            self._work.notify_all()
        thread.join(timeout=60.0)
        self._thread = None

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until nothing is released-but-undispatched; True on success.

        Stashed (gap-blocked) chunks do not count — they are waiting for
        the client, not for the engine.
        """
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        with self._lock:
            while True:
                busy = any(
                    lane.ready or lane.inflight for lane in self._lanes.values()
                )
                if not busy:
                    return True
                if self._thread is None and not busy:  # pragma: no cover
                    return True
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(timeout=remaining)

    def close(self) -> None:
        self.stop()
        self.manager.close()

    def __enter__(self) -> "IngestCore":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- offer side ------------------------------------------------------------

    def offer(self, device_id: str, seq: int, Xc, yc) -> Offer:
        """Offer one sequenced chunk; never blocks, never raises for load."""
        device_id = str(device_id)
        seq = int(seq)
        Xa = np.asarray(Xc, dtype=np.float64)
        ya = np.asarray(yc)
        if Xa.ndim != 2 or len(Xa) != len(ya):
            return self._refused(
                OfferStatus.REJECTED,
                detail=f"malformed chunk: X{Xa.shape} vs y({len(ya)},)",
            )
        with self._lock:
            lane = self._lanes.get(device_id)
            if lane is None:
                return self._refused(OfferStatus.UNKNOWN_DEVICE)
            if self._stopping or self._thread is None:
                return self._refused(
                    OfferStatus.REJECTED, detail="core is not serving"
                )
            if seq < lane.next_seq or seq in lane.stash:
                return self._refused(
                    OfferStatus.DUPLICATE,
                    detail=f"seq {seq} already admitted (expecting {lane.next_seq})",
                )
            if seq > lane.next_seq + self.gap_window:
                return self._refused(
                    OfferStatus.GAP_OVERFLOW,
                    detail=(
                        f"seq {seq} is beyond the gap window "
                        f"(expecting {lane.next_seq}, window {self.gap_window})"
                    ),
                )
            if lane.pending >= self.queue_capacity:
                # Checked before admission on purpose: a full lane while
                # the ladder is already throttling is the "clients are
                # not backing off" trip that escalates to shed/reject.
                self.admission.note_queue_full()
                return self._refused(
                    OfferStatus.QUEUE_FULL,
                    retry_after=self.admission.retry_hint(),
                )
            decision = self.admission.admit(device_id)
            if not decision.accepted:
                status = {
                    "throttle": OfferStatus.THROTTLED,
                    "shed": OfferStatus.SHED,
                    "reject": OfferStatus.REJECTED,
                }[decision.action]
                return self._refused(status, retry_after=decision.retry_after)
            ticket = self._next_ticket
            self._next_ticket += 1
            envelope = ChunkEnvelope(
                device_id, seq, Xa, ya, ticket, time.perf_counter()
            )
            if seq == lane.next_seq:
                lane.ready.append(envelope)
                lane.next_seq += 1
                # The stash may hold the directly following sequences.
                while lane.next_seq in lane.stash:
                    lane.ready.append(lane.stash.pop(lane.next_seq))
                    lane.next_seq += 1
                status = OfferStatus.ACCEPTED
            else:
                lane.stash[seq] = envelope
                status = OfferStatus.BUFFERED
            self._admitted += 1
            self._note_pressure_locked()
            self._count(status)
            self._work.notify_all()
            return Offer(status, ticket=ticket)

    def _refused(
        self,
        status: OfferStatus,
        *,
        retry_after: Optional[float] = None,
        detail: str = "",
    ) -> Offer:
        self._count(status)
        return Offer(status, retry_after=retry_after, detail=detail)

    def _count(self, status: OfferStatus) -> None:
        tel = self.telemetry
        if tel.enabled:
            tel.counter(
                "fleet.ingest.chunks",
                "offered chunks by outcome",
                labels=("status",),
            ).inc(status=status.value)

    def _note_pressure_locked(self) -> None:
        busy = [lane for lane in self._lanes.values() if lane.pending]
        fill = (
            max(lane.pending for lane in busy) / self.queue_capacity
            if busy
            else 0.0
        )
        self.admission.note_pressure(fill)
        tel = self.telemetry
        if tel.enabled:
            tel.gauge(
                "fleet.ingest.pending", "admitted chunks awaiting dispatch"
            ).set(sum(lane.pending for lane in self._lanes.values()))

    # -- results side ----------------------------------------------------------

    def results(
        self,
        device_id: str,
        *,
        order: str = "arrival",
        limit: Optional[int] = None,
        pop: bool = True,
    ) -> List[IngestResult]:
        """Completion tickets for one device, first-come or by sequence.

        ``order="arrival"`` returns completions as they happened;
        ``order="seq"`` sorts by sequence number. (Lanes release strictly
        in sequence, so for a single device the two agree whenever no
        dispatch failed; the knob mirrors the completion modes of
        ``ProcessingManager``-style servers.) ``pop`` consumes what it
        returns.
        """
        if order not in ("arrival", "seq"):
            raise ConfigurationError(f"order must be 'arrival' or 'seq', got {order!r}.")
        with self._lock:
            lane = self._lanes.get(str(device_id))
            if lane is None:
                raise ConfigurationError(f"unknown device {device_id!r}.")
            out = list(lane.results)
            if order == "seq":
                out.sort(key=lambda r: r.seq)
            if limit is not None:
                out = out[: int(limit)]
            if pop:
                taken = {r.ticket for r in out}
                lane.results = deque(
                    r for r in lane.results if r.ticket not in taken
                )
            return out

    def pending(self) -> dict:
        """Queue introspection: totals plus any sequence gaps."""
        with self._lock:
            ready = sum(len(lane.ready) for lane in self._lanes.values())
            stashed = sum(len(lane.stash) for lane in self._lanes.values())
            inflight = sum(lane.inflight for lane in self._lanes.values())
            return {
                "ready": ready,
                "stashed": stashed,
                "inflight": inflight,
                "admitted": self._admitted,
                "completed": self._completed,
                "dispatch_failures": self.dispatch_failures,
                "level": int(self.admission.level),
            }

    def gaps(self) -> Dict[str, List[int]]:
        """Stashed sequence numbers per device (waiting on missing chunks)."""
        with self._lock:
            return {
                dev: sorted(lane.stash)
                for dev, lane in self._lanes.items()
                if lane.stash
            }

    def finish_all(self, *, force_gaps: bool = False) -> Dict[str, list]:
        """Stop serving, close every session, return per-device records.

        Admitted-but-gap-blocked chunks would silently never produce
        records, so a non-empty stash raises unless ``force_gaps=True``
        (which discards them, counted as dispatch failures).
        """
        self.drain()
        self.stop()
        gaps = self.gaps()
        if gaps:
            if not force_gaps:
                raise ConfigurationError(
                    f"unfilled sequence gaps at finish: {gaps} "
                    "(force_gaps=True discards them)."
                )
            with self._lock:
                for lane in self._lanes.values():
                    self.dispatch_failures += len(lane.stash)
                    lane.stash.clear()
        return self.manager.finish_all()

    # -- dispatch side ---------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._stopping and not self._has_ready_locked():
                    self._work.wait(timeout=0.5)
                if not self._has_ready_locked():
                    if self._stopping:
                        return
                    continue
                window = self._cut_window_locked()
            self._execute_window(window)

    def _has_ready_locked(self) -> bool:
        return any(lane.ready for lane in self._lanes.values())

    def _cut_window_locked(self) -> List[ChunkEnvelope]:
        """Round-robin the lanes' released chunks into one arrival window."""
        window: List[ChunkEnvelope] = []
        live = [lane for lane in self._lanes.values() if lane.ready]
        while live and len(window) < self.window_chunks:
            for lane in live:
                if len(window) >= self.window_chunks:
                    break
                envelope = lane.ready.popleft()
                lane.inflight += 1
                window.append(envelope)
            live = [lane for lane in live if lane.ready]
        return window

    def _execute_window(self, window: List[ChunkEnvelope]) -> None:
        manager = self.manager
        admission = self.admission
        while admission.take_shed_request():
            k = max(1, int(manager.capacity * admission.shed_fraction))
            try:
                manager.shed(k)
            except Exception:  # pragma: no cover — shedding is best-effort
                pass
        batch = [(env.device_id, env.Xc, env.yc) for env in window]
        samples = sum(len(env.Xc) for env in window)
        counts: List[Optional[int]] = [None] * len(window)
        drifts: List[Optional[int]] = [None] * len(window)
        error: Optional[str] = None
        t0 = time.perf_counter()
        out: List = []
        try:
            out = manager.submit_many(batch, contain_errors=True)
            if self._sharded:
                manager.drain()
                out = []  # per-chunk records stay worker-side
            else:
                for i, records in enumerate(out):
                    if records is not None:
                        counts[i] = len(records)
                        drifts[i] = sum(1 for r in records if r.drift_detected)
        except Exception as exc:  # noqa: BLE001 — contain; the ladder decides
            error = f"{type(exc).__name__}: {exc}"
            admission.note_failure(error)
            self.dispatch_failures += 1
        seconds = time.perf_counter() - t0
        if error is None:
            admission.note_dispatch(seconds, samples)
        now = time.perf_counter()
        tel = self.telemetry
        with self._lock:
            for i, env in enumerate(window):
                lane = self._lanes[env.device_id]
                lane.inflight -= 1
                per_chunk_error = error
                if error is None and out and out[i] is None:
                    per_chunk_error = "device quarantined"
                latency = now - env.arrived_at
                lane.results.append(
                    IngestResult(
                        ticket=env.ticket,
                        device_id=env.device_id,
                        seq=env.seq,
                        samples=len(env.Xc),
                        records=counts[i] if per_chunk_error is None else None,
                        drifts=drifts[i] if per_chunk_error is None else None,
                        latency_seconds=latency,
                        error=per_chunk_error,
                    )
                )
                self._completed += 1
                if tel.enabled:
                    tel.histogram(
                        "fleet.ingest.latency.seconds",
                        "admission-to-completion latency per chunk",
                        buckets=LATENCY_BUCKETS,
                    ).observe(latency)
            self._note_pressure_locked()
            self._idle.notify_all()

    @property
    def _sharded(self) -> bool:
        # ShardedFleetManager completes asynchronously via drain();
        # FleetManager returns records inline. Duck-typed on `drain`.
        return hasattr(self.manager, "drain")
