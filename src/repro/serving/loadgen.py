"""Seeded load generator: replay a planned fleet against the serving tier.

The offline soak (:func:`~repro.fleet.soak.run_fleet_soak`) calls
``submit`` in a loop; this module puts the *same* planned traffic on the
wire instead — chunks sequenced per device, optionally shuffled out of
order within the gap window, paced by a
:class:`~repro.datasets.fleet.ReplayPace` arrival model, and delivered
either over HTTP (``POST /v1/devices/{id}/chunks``) or straight into an
:class:`~repro.serving.ingest.IngestCore`. Refusals are handled the way
a well-behaved client would: 429s honour ``Retry-After`` (scaled by
``retry_scale`` so tests do not sleep for real), shed/reject refusals
are retried a bounded number of times and then counted as undelivered.

Everything is a pure function of ``seed``: the chunk order comes from
:func:`~repro.datasets.fleet.interleave_schedule`, the hold-back
reordering and pacing jitter from dedicated RNG streams — so the golden
tests can assert the served fleet's records are byte-identical to the
offline soak's for the very same traffic.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..datasets.fleet import ReplayPace, interleave_schedule
from ..utils.exceptions import ConfigurationError

__all__ = ["LoadReport", "run_load"]

#: Seed-sequence domain for the hold-back reordering draws (distinct
#: from the schedule-shuffle and pacing-jitter streams).
_REORDER_DOMAIN = 0x0DD5

#: Refusals worth retrying (the server says when to come back).
_RETRYABLE = ("queue_full", "throttled")
#: Refusals retried a few times, then dropped (the server is shedding).
_SHEDDING = ("shed", "rejected")


@dataclass
class LoadReport:
    """What one load-generation run measured (benches serialise this)."""

    devices: int
    chunks: int                #: chunks the schedule produced
    admitted: int              #: offers that were accepted or buffered
    samples: int               #: samples inside admitted chunks
    completed: int             #: completion tickets collected
    errors: int                #: completions carrying an error
    retries: int               #: resends after a retryable refusal
    undelivered: int           #: chunks dropped after retries ran out
    wall_seconds: float
    samples_per_sec: float
    p50_latency_ms: float
    p99_latency_ms: float
    max_latency_ms: float
    statuses: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "devices": self.devices,
            "chunks": self.chunks,
            "admitted": self.admitted,
            "samples": self.samples,
            "completed": self.completed,
            "errors": self.errors,
            "retries": self.retries,
            "undelivered": self.undelivered,
            "wall_seconds": self.wall_seconds,
            "samples_per_sec": self.samples_per_sec,
            "p50_latency_ms": self.p50_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "max_latency_ms": self.max_latency_ms,
            "statuses": dict(self.statuses),
        }


class _DirectTransport:
    """Offer straight into an :class:`IngestCore` (no sockets)."""

    def __init__(self, core) -> None:
        self.core = core

    def offer(self, device_id, seq, Xc, yc) -> Tuple[str, Optional[float]]:
        result = self.core.offer(device_id, seq, Xc, yc)
        return result.status.value, result.retry_after

    def results(self, device_id) -> list:
        return [r.to_json() for r in self.core.results(device_id)]

    def close(self) -> None:
        pass


class _HttpTransport:
    """Offer over a keep-alive ``http.client`` connection."""

    def __init__(self, base_url: str) -> None:
        url = base_url.rstrip("/")
        if url.startswith("http://"):
            url = url[len("http://"):]
        elif "://" in url:
            raise ConfigurationError(f"only http:// targets supported, got {base_url!r}.")
        host, _, port = url.partition(":")
        self.host = host
        self.port = int(port) if port else 80
        self._conn: Optional[http.client.HTTPConnection] = None

    def _request(self, method: str, path: str, body: Optional[bytes] = None) -> dict:
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=30.0
                )
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                payload = response.read()
                return json.loads(payload.decode("utf-8"))
            except (http.client.HTTPException, OSError):
                # Stale keep-alive socket — reconnect once, then give up.
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def offer(self, device_id, seq, Xc, yc) -> Tuple[str, Optional[float]]:
        body = json.dumps(
            {
                "seq": int(seq),
                "X": np.asarray(Xc, dtype=np.float64).tolist(),
                "y": np.asarray(yc).tolist(),
            }
        ).encode("utf-8")
        reply = self._request("POST", f"/v1/devices/{device_id}/chunks", body)
        return reply.get("status", "rejected"), reply.get("retry_after")

    def results(self, device_id) -> list:
        reply = self._request("GET", f"/v1/devices/{device_id}/results")
        return reply.get("results", [])

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None


def _transport(target):
    if isinstance(target, str):
        return _HttpTransport(target)
    if hasattr(target, "offer") and hasattr(target, "results"):
        return _DirectTransport(target)
    server = getattr(target, "server", None)
    if server is not None:  # a ServingStack
        if getattr(server, "running", False):
            return _HttpTransport(server.url)
        return _DirectTransport(target.core)
    raise ConfigurationError(
        f"cannot derive a transport from {type(target).__name__} — pass a "
        "base URL, an IngestCore, or a started ServingStack."
    )


def _stream_arrays(stream) -> Tuple[np.ndarray, np.ndarray]:
    if hasattr(stream, "X"):
        return stream.X, stream.y
    X, y = stream
    return np.asarray(X), np.asarray(y)


def run_load(
    target,
    streams: Dict[str, object],
    *,
    feed_chunk: int = 100,
    seed: int = 0,
    pace: Optional[ReplayPace] = None,
    reorder: float = 0.0,
    max_retries: int = 8,
    retry_scale: float = 1.0,
    collect_timeout: float = 120.0,
    progress=None,
) -> LoadReport:
    """Replay ``streams`` against ``target`` and collect every completion.

    Parameters
    ----------
    target:
        A base URL (``http://host:port``), an
        :class:`~repro.serving.ingest.IngestCore`, or a
        :class:`~repro.serving.server.ServingStack` (its HTTP front-end
        is used when started, the core directly otherwise).
    streams:
        ``device_id -> (X, y)`` (or any object with ``.X`` / ``.y``).
        Devices must already be registered with the serving side.
    feed_chunk:
        Arrival granularity in samples — must match the offline soak's
        ``feed_chunk`` for byte-identity comparisons.
    seed:
        Drives the interleave shuffle, pacing jitter, and reordering;
        same seed = same traffic, byte for byte.
    pace:
        Optional :class:`~repro.datasets.fleet.ReplayPace`; ``None``
        offers as fast as the target admits.
    reorder:
        Probability of holding a chunk back and sending the device's
        *next* chunk first (exercises the gap-window stash; at most one
        hold per device at a time, so a ``gap_window >= 1`` suffices).
    max_retries:
        Resends per chunk after retryable refusals (429s). Shed/reject
        refusals get at most 2 retries — a shedding server means it.
    retry_scale:
        Multiplier on the server's ``Retry-After`` hints (tests shrink
        it so nobody actually sleeps for 2 seconds).
    collect_timeout:
        How long to poll the results endpoints for outstanding tickets
        after the replay finishes.
    """
    if not 0.0 <= float(reorder) <= 1.0:
        raise ConfigurationError(f"reorder must be in [0, 1], got {reorder!r}.")
    transport = _transport(target)
    device_ids = list(streams)
    arrays = {dev: _stream_arrays(streams[dev]) for dev in device_ids}
    lengths = [len(arrays[dev][0]) for dev in device_ids]
    reorder_rng = np.random.default_rng((int(seed), _REORDER_DOMAIN))

    statuses: Dict[str, int] = {}
    retries = 0
    admitted = 0
    samples = 0
    undelivered = 0
    seqs = {dev: 0 for dev in device_ids}
    held: Dict[str, Optional[tuple]] = {dev: None for dev in device_ids}

    def send(dev: str, seq: int, Xc, yc) -> None:
        nonlocal admitted, samples, retries, undelivered
        attempts = 0
        while True:
            status, retry_after = transport.offer(dev, seq, Xc, yc)
            statuses[status] = statuses.get(status, 0) + 1
            if status in ("accepted", "buffered"):
                admitted += 1
                samples += len(Xc)
                return
            if status in _RETRYABLE and attempts < max_retries:
                attempts += 1
                retries += 1
                time.sleep(min(2.0, (retry_after or 0.05) * retry_scale))
                continue
            if status in _SHEDDING and attempts < min(2, max_retries):
                attempts += 1
                retries += 1
                time.sleep(min(2.0, (retry_after or 0.05) * retry_scale))
                continue
            undelivered += 1
            return

    t_start = time.perf_counter()
    sent = 0
    schedule = interleave_schedule(lengths, feed_chunk, seed=seed, pace=pace)
    for event in schedule:
        if pace is not None:
            due, i, start, stop = event
            lag = t_start + due - time.perf_counter()
            if lag > 0:
                time.sleep(lag)
        else:
            i, start, stop = event
        dev = device_ids[i]
        X, y = arrays[dev]
        seq = seqs[dev]
        seqs[dev] += 1
        chunk = (seq, X[start:stop], y[start:stop])
        pending = held[dev]
        if pending is None and reorder and reorder_rng.random() < float(reorder):
            held[dev] = chunk     # hold; the device's next chunk goes first
            continue
        send(dev, *chunk)
        if pending is not None:
            held[dev] = None
            send(dev, *pending)   # fills the gap the hold opened
        sent += 1
        if progress is not None and sent % 500 == 0:
            progress(f"  {sent} chunks offered, {admitted} admitted")
    for dev, pending in held.items():
        if pending is not None:   # stream ended while a chunk was held
            send(dev, *pending)

    # -- collect completions ---------------------------------------------------
    completed = 0
    errors = 0
    latencies: list = []
    deadline = time.perf_counter() + float(collect_timeout)
    outstanding = set(device_ids)
    while outstanding and admitted - completed > 0:
        progressed = False
        for dev in list(outstanding):
            for record in transport.results(dev):
                completed += 1
                progressed = True
                if record.get("error"):
                    errors += 1
                latencies.append(float(record.get("latency_seconds", 0.0)))
            if seqs[dev] == 0:
                outstanding.discard(dev)
        if completed >= admitted:
            break
        if not progressed:
            if time.perf_counter() > deadline:
                break
            time.sleep(0.02)
    transport.close()

    wall = time.perf_counter() - t_start
    lat_ms = np.asarray(latencies, dtype=np.float64) * 1000.0
    return LoadReport(
        devices=len(device_ids),
        chunks=sum(seqs.values()),
        admitted=admitted,
        samples=samples,
        completed=completed,
        errors=errors,
        retries=retries,
        undelivered=undelivered,
        wall_seconds=wall,
        samples_per_sec=samples / wall if wall > 0 else 0.0,
        p50_latency_ms=float(np.percentile(lat_ms, 50)) if len(lat_ms) else 0.0,
        p99_latency_ms=float(np.percentile(lat_ms, 99)) if len(lat_ms) else 0.0,
        max_latency_ms=float(lat_ms.max()) if len(lat_ms) else 0.0,
        statuses=statuses,
    )
