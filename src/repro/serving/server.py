"""Asyncio HTTP front-end for the ingestion core (stdlib only).

One port serves both planes:

* **data plane** — ``POST /v1/devices/{id}/chunks`` offers a sequenced
  chunk (JSON ``{"seq": n, "X": [[...]], "y": [...]}``) and maps the
  :class:`~repro.serving.ingest.OfferStatus` onto HTTP: 202
  accepted/buffered, 409 duplicate, 422 gap overflow, 429 + Retry-After
  throttled/queue-full, 503 shed/rejected, 404 unknown device.
  ``GET /v1/devices/{id}/results`` returns completion tickets
  (``?order=seq`` or first-come, ``?pop=0`` to peek), and
  ``GET /v1/ingest`` exposes queue introspection;
* **observability plane** — ``/metrics``, ``/health``, ``/fleet`` and
  ``/`` rendered by the same
  :class:`~repro.telemetry.httpd.EndpointSuite` the scrape-only
  :class:`~repro.telemetry.httpd.MetricsServer` uses, so Prometheus
  scrapes the serving port directly.

The server is a single asyncio loop on a daemon thread (same lifecycle
API as ``MetricsServer``: ``start``/``stop``/``port``/``url``, context
manager, port 0 = pick free). Handlers never block: ``offer`` and
``results`` only take the core's lock — the fleet engine itself runs on
the core's dispatcher thread, never on the loop.

:class:`ServingStack` wires the whole tier — manager (optionally
sharded/supervised, sharing the admission ladder), admission
controller, ingest core, and this server — for the CLI, the benches and
the tests.
"""

from __future__ import annotations

import asyncio
import json
import threading
from pathlib import Path
from typing import Callable, Optional, Tuple

from ..engine.spec import ExperimentSpec
from ..fleet.manager import FleetManager
from ..fleet.sharding import ShardedFleetManager
from ..fleet.supervisor import SupervisorConfig
from ..telemetry.httpd import EndpointSuite
from ..utils.exceptions import ConfigurationError
from ..utils.hooks import default_telemetry
from .admission import AdmissionController
from .ingest import IngestCore, OfferStatus

__all__ = ["IngestServer", "ServingStack"]

_JSON = "application/json"

#: OfferStatus -> HTTP status code.
_HTTP_OF = {
    OfferStatus.ACCEPTED: 202,
    OfferStatus.BUFFERED: 202,
    OfferStatus.DUPLICATE: 409,
    OfferStatus.GAP_OVERFLOW: 422,
    OfferStatus.QUEUE_FULL: 429,
    OfferStatus.THROTTLED: 429,
    OfferStatus.SHED: 503,
    OfferStatus.REJECTED: 503,
    OfferStatus.UNKNOWN_DEVICE: 404,
}

_INDEX = (
    "repro serving endpoint: "
    "POST /v1/devices/{id}/chunks  GET /v1/devices/{id}/results  "
    "GET /v1/ingest  /metrics /health /fleet\n"
)


class IngestServer:
    """Serve an :class:`IngestCore` over HTTP/1.1 from an asyncio loop."""

    def __init__(
        self,
        core: IngestCore,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry=None,
        health_provider: Optional[Callable[[], dict]] = None,
        fleet_provider: Optional[Callable[[], dict]] = None,
    ) -> None:
        self.core = core
        self.telemetry = telemetry if telemetry is not None else default_telemetry()
        self.endpoints = EndpointSuite(
            self.telemetry,
            health_provider=health_provider,
            fleet_provider=fleet_provider,
            index_text=_INDEX,
        )
        self._requested = (host, int(port))
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._bound: Optional[Tuple[str, int]] = None
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def host(self) -> str:
        return self._bound[0] if self._bound else self._requested[0]

    @property
    def port(self) -> int:
        return self._bound[1] if self._bound else self._requested[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "IngestServer":
        if self._thread is not None:
            return self
        ready = threading.Event()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run_loop,
            args=(ready,),
            name="repro-ingest-server",
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout=10.0):  # pragma: no cover — startup hang
            raise ConfigurationError("ingest server failed to start in 10s.")
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread.join(timeout=5.0)
            self._thread = None
            raise error
        return self

    def _run_loop(self, ready: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._serve_client, *self._requested)
            )
        except BaseException as exc:  # bind failure — surface on start()
            self._startup_error = exc
            ready.set()
            loop.close()
            return
        self._server = server
        self._bound = server.sockets[0].getsockname()[:2]
        ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self) -> None:
        if self._thread is None:
            return
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout=10.0)
        self._thread = None
        self._server = None
        self._loop = None
        self._bound = None

    def __enter__(self) -> "IngestServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- HTTP/1.1 --------------------------------------------------------------

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, version = (
                        request_line.decode("latin-1").strip().split(" ", 2)
                    )
                except ValueError:
                    writer.write(self._render(400, _JSON, '{"error": "bad request"}\n'))
                    await writer.drain()
                    break
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                length = int(headers.get("content-length") or 0)
                body = await reader.readexactly(length) if length else b""
                status, ctype, payload, extra = self._route(method, target, body)
                keep_alive = (
                    version == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                )
                writer.write(
                    self._render(status, ctype, payload, extra, keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    _REASONS = {
        200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
        405: "Method Not Allowed", 409: "Conflict", 422: "Unprocessable Entity",
        429: "Too Many Requests", 503: "Service Unavailable",
    }

    def _render(
        self,
        status: int,
        ctype: str,
        body: str,
        extra: Optional[dict] = None,
        keep_alive: bool = True,
    ) -> bytes:
        payload = body.encode("utf-8")
        reason = self._REASONS.get(status, "OK")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(payload)}",
            "Server: repro-serving/1",
        ]
        if not keep_alive:
            lines.append("Connection: close")
        for key, value in (extra or {}).items():
            lines.append(f"{key}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload

    # -- routing ---------------------------------------------------------------

    def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, str, str, Optional[dict]]:
        path, _, query = target.partition("?")
        parts = [p for p in path.split("/") if p]
        if len(parts) == 4 and parts[0] == "v1" and parts[1] == "devices":
            device_id, leaf = parts[2], parts[3]
            if leaf == "chunks" and method == "POST":
                return self._handle_chunk(device_id, body)
            if leaf == "results" and method == "GET":
                return self._handle_results(device_id, query)
            return 405, _JSON, '{"error": "method not allowed"}\n', None
        if path.rstrip("/") == "/v1/ingest" and method == "GET":
            return (
                200,
                _JSON,
                json.dumps(self.core.pending(), sort_keys=True) + "\n",
                None,
            )
        if method != "GET":
            return 405, _JSON, '{"error": "method not allowed"}\n', None
        status, ctype, rendered = self.endpoints.handle(path)
        return status, ctype, rendered, None

    def _handle_chunk(
        self, device_id: str, body: bytes
    ) -> Tuple[int, str, str, Optional[dict]]:
        try:
            payload = json.loads(body.decode("utf-8"))
            seq = int(payload["seq"])
            X = payload["X"]
            y = payload["y"]
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            return (
                400,
                _JSON,
                json.dumps({"error": f"malformed chunk body: {exc}"}) + "\n",
                None,
            )
        try:
            offer = self.core.offer(device_id, seq, X, y)
        except ConfigurationError as exc:
            return 400, _JSON, json.dumps({"error": str(exc)}) + "\n", None
        status = _HTTP_OF[offer.status]
        reply = {"status": offer.status.value, "seq": seq}
        if offer.ticket is not None:
            reply["ticket"] = offer.ticket
        if offer.retry_after is not None:
            reply["retry_after"] = round(offer.retry_after, 4)
        if offer.detail:
            reply["detail"] = offer.detail
        extra = None
        if offer.retry_after is not None and status in (429, 503):
            # RFC 7231 Retry-After in (integral) seconds; keep sub-second
            # precision in the JSON body for clients that parse it.
            extra = {"Retry-After": max(1, round(offer.retry_after))}
        return status, _JSON, json.dumps(reply, sort_keys=True) + "\n", extra

    def _handle_results(
        self, device_id: str, query: str
    ) -> Tuple[int, str, str, Optional[dict]]:
        params = {}
        for pair in query.split("&"):
            if "=" in pair:
                key, value = pair.split("=", 1)
                params[key] = value
        order = params.get("order", "arrival")
        limit = int(params["max"]) if "max" in params else None
        pop = params.get("pop", "1") not in ("0", "false", "no")
        try:
            results = self.core.results(
                device_id, order=order, limit=limit, pop=pop
            )
        except ConfigurationError as exc:
            return 404, _JSON, json.dumps({"error": str(exc)}) + "\n", None
        body = {
            "device": device_id,
            "count": len(results),
            "results": [r.to_json() for r in results],
        }
        return 200, _JSON, json.dumps(body, sort_keys=True) + "\n", None


class ServingStack:
    """Manager + admission + ingest core + HTTP front-end, wired.

    The one-stop constructor the CLI (``python -m repro serve``), the
    serving bench, and the golden tests share. With ``n_shards`` the
    fleet runs sharded; with ``supervisor`` too, the supervisor shares
    the admission controller's ladder — network backpressure and shard
    self-healing escalate through one authority.
    """

    def __init__(
        self,
        *,
        capacity: int = 64,
        spool_dir: Optional[str | Path] = None,
        chunk_size: Optional[int] = None,
        batch_scoring: bool = False,
        n_shards: Optional[int] = None,
        supervisor: Optional[SupervisorConfig] = None,
        admission: Optional[AdmissionController] = None,
        queue_capacity: int = 64,
        gap_window: int = 32,
        window_chunks: int = 256,
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry=None,
    ) -> None:
        tel = telemetry if telemetry is not None else default_telemetry()
        self.admission = (
            admission if admission is not None else AdmissionController(telemetry=tel)
        )
        if n_shards:
            self.manager = ShardedFleetManager(
                int(n_shards),
                capacity,
                spool_dir,
                chunk_size=chunk_size,
                batch_scoring=batch_scoring,
                supervisor=supervisor,
                ladder=self.admission.ladder if supervisor is not None else None,
            )
        else:
            self.manager = FleetManager(
                capacity=capacity,
                spool_dir=spool_dir,
                chunk_size=chunk_size,
                batch_scoring=batch_scoring,
            )
        self.core = IngestCore(
            self.manager,
            queue_capacity=queue_capacity,
            gap_window=gap_window,
            window_chunks=window_chunks,
            admission=self.admission,
            telemetry=tel,
        )
        self.server = IngestServer(
            self.core,
            host=host,
            port=port,
            telemetry=tel,
            health_provider=self._health,
            fleet_provider=self._fleet,
        )

    def _health(self) -> dict:
        level = self.admission.level
        return {
            "status": "ok" if int(level) == 0 else "degraded",
            "level": getattr(level, "name", str(level)),
            "level_value": int(level),
            "ingest": self.core.pending(),
        }

    def _fleet(self) -> dict:
        if isinstance(self.manager, ShardedFleetManager):
            # Mid-run totals from the submit-reply stats deltas — live,
            # not frozen at the last collect boundary.
            return {"devices": self.manager.live_stats(), "sharded": True}
        return {
            "devices": self.manager.stats.to_json(),
            "sharded": False,
        }

    # -- lifecycle -------------------------------------------------------------

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def port(self) -> int:
        return self.server.port

    def register(self, device_id: str, spec: ExperimentSpec) -> None:
        self.core.register(device_id, spec)

    def start(self) -> "ServingStack":
        self.core.start()
        self.server.start()
        return self

    def stop(self) -> None:
        self.server.stop()
        self.core.stop()

    def finish_all(self, **kwargs) -> dict:
        self.server.stop()
        return self.core.finish_all(**kwargs)

    def close(self) -> None:
        self.server.stop()
        self.core.close()

    def __enter__(self) -> "ServingStack":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()
