"""Network serving for the fleet engine: ingestion, admission, front-end.

The fleet layers below this package are caller-paced — someone loops and
calls ``submit``. This package turns them into a *served* system that
real traffic can be pointed at:

* :mod:`repro.serving.ingest` — per-device bounded inbound lanes with
  monotone sequence numbers, out-of-order buffering inside a gap window,
  and a dispatcher thread draining the lanes into
  :meth:`~repro.fleet.manager.FleetManager.submit_many` arrival windows
  (so the batched scoring path keeps working under network arrivals);
* :mod:`repro.serving.admission` — maps queue depth and dispatch
  latency onto the guard :class:`~repro.guard.ladder.DegradationLadder`
  (HEALTHY=accept, SANITIZING=throttle, PASSTHROUGH=shed, FROZEN=reject)
  and emits the ``fleet.ingest.*`` metrics;
* :mod:`repro.serving.server` — an asyncio HTTP/1.1 front-end (stdlib
  only) exposing ``POST /v1/devices/{id}/chunks``,
  ``GET /v1/devices/{id}/results`` and the ``/metrics`` / ``/health`` /
  ``/fleet`` observability endpoints on one port;
* :mod:`repro.serving.loadgen` — replays
  :func:`~repro.datasets.fleet.plan_fleet` schedules against the server
  (or straight into the core) at wall-clock or accelerated rates with
  seeded jitter and bounded out-of-order reordering, measuring sustained
  samples/s and p99 ingest latency.

See ``docs/serving.md`` for the endpoint and sequencing contract.
"""

from .admission import AdmissionController, AdmissionDecision, device_priority
from .ingest import ChunkEnvelope, IngestCore, IngestResult, Offer, OfferStatus
from .loadgen import LoadReport, run_load
from .server import IngestServer, ServingStack

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ChunkEnvelope",
    "IngestCore",
    "IngestResult",
    "IngestServer",
    "LoadReport",
    "Offer",
    "OfferStatus",
    "ServingStack",
    "device_priority",
    "run_load",
]
