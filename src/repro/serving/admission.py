"""Admission control: queue pressure and latency mapped onto the ladder.

The guard :class:`~repro.guard.ladder.DegradationLadder` already gives
the fleet a load-shedding vocabulary (PR 9 uses it for respawn churn);
this module reuses the *same* state machine as the serving tier's
admission authority:

========== ============================================================
HEALTHY    accept every chunk
SANITIZING **throttle** — new chunks are refused with a ``Retry-After``
           hint (they were never admitted, so the no-record-loss
           contract is untouched; well-behaved clients resend)
PASSTHROUGH **shed** — the manager evicts its coldest sessions
           (:meth:`~repro.fleet.manager.FleetManager.shed`) and the
           lowest-priority slice of the device space is refused while
           higher-priority devices keep flowing
FROZEN     **reject** everything (sticky, like the guard ladder)
========== ============================================================

Escalation signals: a full lane while HEALTHY is a *fault* (enough of
them inside ``fault_window`` trips to SANITIZING); a full lane while
already throttling means throttling is not containing the load — that is
a *trip* (straight to PASSTHROUGH, and to FROZEN on repeat); a dispatch
that raises is a trip; a dispatch slower than ``latency_slo`` is a
fault. Clean dispatches de-escalate through the ladder's own hysteresis
cooldown.

Device priority is a stable hash (:func:`device_priority`) so shedding
is deterministic, uniform over the fleet, and identical across
processes — the same devices are shed on every run of a seeded soak.

Sharing: pass ``controller.ladder`` to
:class:`~repro.fleet.supervisor.FleetSupervisor` (its ``ladder=`` knob)
and network backpressure and shard supervision escalate as one
authority.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from ..guard.ladder import DegradationLadder, GuardLevel, Transition
from ..utils.exceptions import ConfigurationError
from ..utils.hooks import default_telemetry

__all__ = ["AdmissionController", "AdmissionDecision", "device_priority"]


def device_priority(device_id: str) -> float:
    """Stable priority in ``[0, 1)`` — higher survives shedding longer.

    sha256-based like :func:`~repro.fleet.sharding.shard_of` (builtin
    ``hash`` is salted per process, which would shed different devices
    every run).
    """
    digest = hashlib.sha256(str(device_id).encode()).digest()
    return int.from_bytes(digest[8:16], "big") / 2**64


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one :meth:`AdmissionController.admit` call.

    ``action`` is one of ``"accept"``, ``"throttle"``, ``"shed"``,
    ``"reject"``; non-accept decisions carry a ``retry_after`` hint in
    seconds (``shed``/``reject`` hints are advisory — the device may
    well be refused again).
    """

    action: str
    level: GuardLevel
    retry_after: Optional[float] = None

    @property
    def accepted(self) -> bool:
        return self.action == "accept"


class AdmissionController:
    """Map ingest pressure onto a :class:`DegradationLadder`.

    Parameters
    ----------
    ladder:
        The shared degradation authority; built with serving-tuned
        thresholds when not supplied.
    shed_fraction:
        Slice of the device-priority space refused while PASSTHROUGH
        (the *lowest*-priority devices).
    retry_after:
        Base ``Retry-After`` hint (seconds) while throttling; scaled by
        current queue pressure.
    latency_slo:
        Dispatch wall-time budget in seconds; a slower dispatch counts
        as a fault. ``None`` disables the latency signal.
    telemetry:
        Hub for the ``fleet.ingest.*`` metrics (defaults to the process
        hub; a disabled hub costs nothing).
    """

    def __init__(
        self,
        *,
        ladder: Optional[DegradationLadder] = None,
        shed_fraction: float = 0.25,
        retry_after: float = 0.25,
        latency_slo: Optional[float] = None,
        telemetry=None,
    ) -> None:
        if not 0.0 < float(shed_fraction) <= 1.0:
            raise ConfigurationError(
                f"shed_fraction must be in (0, 1], got {shed_fraction!r}."
            )
        if float(retry_after) <= 0:
            raise ConfigurationError(
                f"retry_after must be positive, got {retry_after!r}."
            )
        if latency_slo is not None and float(latency_slo) <= 0:
            raise ConfigurationError(
                f"latency_slo must be positive or None, got {latency_slo!r}."
            )
        # Serving-tuned defaults: wider windows than the guard's
        # per-stream ladder so the throttle level is visibly *held*
        # (and observable) before pressure escalates it further.
        self.ladder = ladder if ladder is not None else DegradationLadder(
            trip_faults=8,
            fault_window=64,
            freeze_trips=4,
            trip_window=512,
            cooldown=64,
        )
        self.shed_fraction = float(shed_fraction)
        self.retry_after = float(retry_after)
        self.latency_slo = None if latency_slo is None else float(latency_slo)
        self.telemetry = telemetry if telemetry is not None else default_telemetry()
        #: monotone event index the ladder windows run over.
        self.clock = 0
        #: pressure in [0, 1] — the dispatcher reports fleet queue fill.
        self._pressure = 0.0
        #: shed requests not yet executed by the dispatcher.
        self._pending_sheds = 0
        self.decisions = {"accept": 0, "throttle": 0, "shed": 0, "reject": 0}
        self.transitions: list = []

    # -- decisions -------------------------------------------------------------

    @property
    def level(self) -> GuardLevel:
        return self.ladder.level

    def admit(self, device_id: str) -> AdmissionDecision:
        """Decide one chunk's fate from the current ladder level."""
        self.clock += 1
        level = self.ladder.level
        if level == GuardLevel.HEALTHY:
            decision = AdmissionDecision("accept", level)
        elif level == GuardLevel.SANITIZING:
            decision = AdmissionDecision(
                "throttle", level, retry_after=self.retry_hint()
            )
        elif level == GuardLevel.PASSTHROUGH:
            if device_priority(device_id) < self.shed_fraction:
                decision = AdmissionDecision(
                    "shed", level, retry_after=4 * self.retry_hint()
                )
            else:
                decision = AdmissionDecision("accept", level)
        else:  # FROZEN
            decision = AdmissionDecision(
                "reject", level, retry_after=8 * self.retry_hint()
            )
        self.decisions[decision.action] += 1
        tel = self.telemetry
        if tel.enabled:
            tel.counter(
                "fleet.ingest.decisions",
                "admission outcomes by action",
                labels=("action",),
            ).inc(action=decision.action)
        return decision

    def retry_hint(self) -> float:
        # More backlog => longer hint; bounded to 8x base so a client
        # never parks for minutes because one scrape saw a spike.
        return self.retry_after * (1.0 + 7.0 * min(1.0, max(0.0, self._pressure)))

    # -- signals from the ingest core ------------------------------------------

    def note_pressure(self, fill: float) -> None:
        """Report fleet-wide lane fill in ``[0, 1]`` (gauge + retry hints)."""
        self._pressure = float(fill)
        tel = self.telemetry
        if tel.enabled:
            tel.gauge(
                "fleet.ingest.queue.fill", "bounded-lane fill fraction (0-1)"
            ).set(self._pressure)

    def note_queue_full(self) -> Optional[Transition]:
        """A lane hit capacity. Fault while HEALTHY; trip once throttling.

        The distinction is the staircase: the first full lanes nudge the
        ladder toward SANITIZING (throttle); lanes *still* filling while
        throttled mean the clients are not backing off — escalate to
        shedding, then reject.
        """
        self.clock += 1
        if self.ladder.level == GuardLevel.HEALTHY:
            transition = self.ladder.record_fault(self.clock)
        else:
            transition = self.ladder.record_trip(
                self.clock, "lanes full despite throttling"
            )
        return self._note(transition)

    def note_dispatch(self, seconds: float, samples: int) -> Optional[Transition]:
        """A dispatch window completed; clean unless over the latency SLO."""
        self.clock += 1
        tel = self.telemetry
        if tel.enabled:
            tel.histogram(
                "fleet.ingest.dispatch.seconds",
                "wall time of one dispatcher window",
            ).observe(float(seconds))
            if samples:
                tel.counter(
                    "fleet.ingest.samples", "samples dispatched into the fleet"
                ).inc(int(samples))
        if self.latency_slo is not None and float(seconds) > self.latency_slo:
            return self._note(
                self.ladder.record_fault(self.clock)
            )
        return self._note(self.ladder.record_clean(self.clock))

    def note_failure(self, reason: str) -> Optional[Transition]:
        """A dispatch raised — the engine itself is unhealthy: trip."""
        self.clock += 1
        return self._note(self.ladder.record_trip(self.clock, str(reason)))

    def _note(self, transition: Optional[Transition]) -> Optional[Transition]:
        if transition is None:
            return None
        self.transitions.append(transition)
        if (
            transition.to_level == GuardLevel.PASSTHROUGH
            and transition.to_level > transition.from_level
        ):
            self._pending_sheds += 1
        tel = self.telemetry
        if tel.enabled:
            tel.gauge(
                "fleet.ingest.level", "admission ladder level (0-3)"
            ).set(int(transition.to_level))
            tel.emit(
                "ingest_ladder_transition",
                from_level=int(transition.from_level),
                to_level=int(transition.to_level),
                reason=transition.reason,
            )
        return transition

    def take_shed_request(self) -> bool:
        """Dispatcher hook: one pending PASSTHROUGH entry to act on?

        Shedding touches the manager, and all manager access belongs to
        the dispatcher thread — so the transition only *requests* the
        shed and the dispatcher executes it between windows.
        """
        if self._pending_sheds > 0:
            self._pending_sheds -= 1
            return True
        return False
