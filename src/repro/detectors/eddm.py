"""EDDM — Early Drift Detection Method (Baena-García et al. 2006).

A companion to DDM tuned for *gradual* drifts: instead of the error rate
it monitors the **distance between consecutive errors**. While the model
is healthy, errors are rare and far apart; as a drift develops errors
bunch up and the mean inter-error distance shrinks. With ``p'`` the mean
distance, ``s'`` its standard deviation, and ``(p'+2s')_max`` the best
level seen, EDDM signals

* **warning** when ``(p' + 2 s') / (p' + 2 s')_max < β``,
* **drift** when the ratio drops below ``α``.

Defaults deviate from the original (α=0.90, β=0.95) to α=0.75, β=0.85
with 3-event debouncing: the original thresholds false-alarm whenever the
running level dips below an early noisy maximum on long stationary
streams, while a genuine drift collapses the inter-error distance so hard
(ratio ≪ 0.5) that the stricter thresholds barely delay detection.
"""

from __future__ import annotations

from ..utils.exceptions import ConfigurationError
from ..utils.math import RunningMoments
from ..utils.validation import check_positive
from .base import DriftState, ErrorRateDriftDetector

__all__ = ["EDDM"]


class EDDM(ErrorRateDriftDetector):
    """Early Drift Detection Method over a Bernoulli error stream.

    Parameters
    ----------
    alpha:
        Drift ratio threshold (default 0.75; see class docstring).
    beta:
        Warning ratio threshold (default 0.85); must satisfy
        ``alpha < beta < 1``.
    min_errors:
        Minimum observed errors before any signal (default 30 — the
        statistic is an average over inter-error gaps).
    min_consecutive:
        The drift (or warning) condition must hold on this many
        *consecutive error events* before it fires (default 3). The
        original formulation fires on a single crossing, which on long
        stationary streams false-alarms whenever the running level dips
        below an early lucky maximum; debouncing removes most of those
        while barely delaying true detections (errors bunch up under a
        real drift, so consecutive crossings arrive quickly).
    """

    def __init__(
        self,
        *,
        alpha: float = 0.75,
        beta: float = 0.85,
        min_errors: int = 30,
        min_consecutive: int = 3,
    ) -> None:
        super().__init__()
        if not 0.0 < alpha < beta < 1.0:
            raise ConfigurationError(
                f"need 0 < alpha ({alpha}) < beta ({beta}) < 1."
            )
        check_positive(min_errors, "min_errors")
        check_positive(min_consecutive, "min_consecutive")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.min_errors = int(min_errors)
        self.min_consecutive = int(min_consecutive)
        self._gaps = RunningMoments()
        self._last_error_at: int | None = None
        self._best_level = 0.0
        self._below_drift = 0

    @property
    def n_errors(self) -> int:
        return self._gaps.count + (1 if self._last_error_at is not None and self._gaps.count == 0 else 0)

    def update(self, error: bool | int | float) -> DriftState:
        """Fold one error indicator; returns NORMAL / WARNING / DRIFT."""
        self.n_samples_seen += 1
        self.state = DriftState.NORMAL
        if not error:
            return self.state
        if self._last_error_at is None:
            self._last_error_at = self.n_samples_seen
            return self.state
        gap = self.n_samples_seen - self._last_error_at
        self._last_error_at = self.n_samples_seen
        self._gaps.update(float(gap))
        if self._gaps.count < self.min_errors:
            return self.state
        level = self._gaps.mean + 2.0 * self._gaps.std
        if level > self._best_level:
            self._best_level = level
            self._below_drift = 0
            return self.state
        ratio = level / self._best_level if self._best_level > 0 else 1.0
        if ratio < self.alpha:
            self._below_drift += 1
            if self._below_drift >= self.min_consecutive:
                self.state = DriftState.DRIFT
            else:
                self.state = DriftState.WARNING
        elif ratio < self.beta:
            self._below_drift = 0
            self.state = DriftState.WARNING
        else:
            self._below_drift = 0
        return self.state

    def reset(self) -> None:
        """Restart after model adaptation."""
        super().reset()
        self._gaps.reset()
        self._last_error_at = None
        self._best_level = 0.0
        self._below_drift = 0

    def state_nbytes(self) -> int:
        """A handful of scalars."""
        return 6 * 8

    def _extra_state(self) -> dict:
        return {
            "gaps": self._gaps.get_state(),
            "last_error_at": (
                None if self._last_error_at is None else int(self._last_error_at)
            ),
            "best_level": float(self._best_level),
            "below_drift": int(self._below_drift),
        }

    def _set_extra_state(self, state: dict) -> None:
        self._gaps.set_state(state["gaps"])
        lea = state["last_error_at"]
        self._last_error_at = None if lea is None else int(lea)
        self._best_level = float(state["best_level"])
        self._below_drift = int(state["below_drift"])
