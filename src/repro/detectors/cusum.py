"""CUSUM — the classic two-sided cumulative-sum change detector (Page 1954).

The ancestor of Page–Hinkley and the simplest member of the sequential
error-rate family: it accumulates standardised deviations from a target
mean in both directions and fires when either side's cumulative sum
exceeds a threshold. O(1) state, like the paper's proposal — but it
watches one scalar signal, not the input distribution.

.. math::

    g^+_t = \\max(0, g^+_{t-1} + (x_t - \\mu_0 - k)), \\qquad
    g^-_t = \\max(0, g^-_{t-1} - (x_t - \\mu_0 + k)),

drift when ``g⁺ > h`` or ``g⁻ > h``. The target mean ``μ₀`` is either
given or estimated from the first ``warmup`` samples.
"""

from __future__ import annotations

from typing import Optional

from ..utils.math import RunningMoments
from ..utils.validation import check_positive
from .base import DriftState, ErrorRateDriftDetector

__all__ = ["CUSUM"]


class CUSUM(ErrorRateDriftDetector):
    """Two-sided CUSUM over a scalar stream.

    Parameters
    ----------
    threshold:
        Decision threshold ``h`` on the cumulative sums.
    drift_magnitude:
        Slack ``k`` — half the smallest mean shift worth detecting;
        deviations below it never accumulate.
    target_mean:
        Known in-control mean ``μ₀``; when ``None`` it is estimated from
        the first ``warmup`` samples (no detection during warm-up).
    warmup:
        Samples used for the ``μ₀`` estimate when it is not given.
    """

    def __init__(
        self,
        *,
        threshold: float = 30.0,
        drift_magnitude: float = 0.05,
        target_mean: Optional[float] = None,
        warmup: int = 30,
    ) -> None:
        super().__init__()
        check_positive(threshold, "threshold")
        check_positive(drift_magnitude, "drift_magnitude", strict=False)
        check_positive(warmup, "warmup")
        self.threshold = float(threshold)
        self.drift_magnitude = float(drift_magnitude)
        self.target_mean = None if target_mean is None else float(target_mean)
        self.warmup = int(warmup)
        self._mu0 = self.target_mean
        self._warm = RunningMoments()
        self._g_pos = 0.0
        self._g_neg = 0.0
        self.last_direction: Optional[str] = None

    @property
    def estimated_mean(self) -> Optional[float]:
        """The in-control mean in use (None while still warming up)."""
        return self._mu0

    def update(self, error: bool | int | float) -> DriftState:
        """Fold one value; DRIFT when either cumulative sum crosses ``h``."""
        x = float(error)
        self.n_samples_seen += 1
        if self._mu0 is None:
            self._warm.update(x)
            if self._warm.count >= self.warmup:
                self._mu0 = self._warm.mean
            self.state = DriftState.NORMAL
            return self.state
        dev = x - self._mu0
        k = self.drift_magnitude
        self._g_pos = max(0.0, self._g_pos + dev - k)
        self._g_neg = max(0.0, self._g_neg - dev - k)
        if self._g_pos > self.threshold:
            self.state = DriftState.DRIFT
            self.last_direction = "increase"
        elif self._g_neg > self.threshold:
            self.state = DriftState.DRIFT
            self.last_direction = "decrease"
        else:
            self.state = DriftState.NORMAL
        return self.state

    def reset(self) -> None:
        """Restart (keeps a given ``target_mean``, re-estimates otherwise)."""
        super().reset()
        self._g_pos = 0.0
        self._g_neg = 0.0
        self._mu0 = self.target_mean
        self._warm.reset()
        self.last_direction = None

    def state_nbytes(self) -> int:
        """A handful of scalars."""
        return 6 * 8

    def _extra_state(self) -> dict:
        return {
            "mu0": None if self._mu0 is None else float(self._mu0),
            "warm": self._warm.get_state(),
            "g_pos": float(self._g_pos),
            "g_neg": float(self._g_neg),
            "last_direction": self.last_direction,
        }

    def _set_extra_state(self, state: dict) -> None:
        mu0 = state["mu0"]
        self._mu0 = None if mu0 is None else float(mu0)
        self._warm.set_state(state["warm"])
        self._g_pos = float(state["g_pos"])
        self._g_neg = float(state["g_neg"])
        self.last_direction = state["last_direction"]
