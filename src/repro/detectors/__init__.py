"""Baseline concept-drift detectors (batch and error-rate families)."""

from .adwin import ADWIN
from .base import BatchDriftDetector, DriftState, ErrorRateDriftDetector
from .cusum import CUSUM
from .ddm import DDM
from .eddm import EDDM
from .ensemble import VotingDetectorEnsemble
from .hdddm import HDDDM, hellinger_distance
from .kswin import KSWIN, ks_two_sample
from .none import NoDetection
from .page_hinkley import PageHinkley
from .quanttree import (
    QuantTree,
    QuantTreePartition,
    pearson_statistic,
    quanttree_threshold,
)
from .spll import SPLL, spll_statistic

__all__ = [
    "DriftState",
    "BatchDriftDetector",
    "ErrorRateDriftDetector",
    "QuantTree",
    "QuantTreePartition",
    "pearson_statistic",
    "quanttree_threshold",
    "SPLL",
    "spll_statistic",
    "DDM",
    "CUSUM",
    "EDDM",
    "ADWIN",
    "PageHinkley",
    "KSWIN",
    "ks_two_sample",
    "VotingDetectorEnsemble",
    "HDDDM",
    "hellinger_distance",
    "NoDetection",
]
