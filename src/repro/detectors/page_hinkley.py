"""Page–Hinkley test — a classic sequential change detector.

Included as an additional error-rate baseline (the paper discusses the
error-rate family in §2.2.2; Page–Hinkley is the textbook CUSUM-style
member). It monitors the cumulative deviation of a signal from its running
mean and fires when the deviation exceeds ``threshold``:

.. math::

    m_T = \\sum_{t=1}^{T} (x_t - \\bar{x}_T - \\delta), \\qquad
    PH_T = m_T - \\min_{t \\le T} m_t \\ge \\lambda .

O(1) memory and time per sample — like the paper's proposed method it is
fully sequential, but it watches a scalar signal (e.g. the model's error
indicator or anomaly score), not the input distribution.
"""

from __future__ import annotations

from ..utils.validation import check_positive
from .base import DriftState, ErrorRateDriftDetector

__all__ = ["PageHinkley"]


class PageHinkley(ErrorRateDriftDetector):
    """Page–Hinkley change detector for increases of the monitored signal.

    Parameters
    ----------
    delta:
        Magnitude tolerance; deviations smaller than ``delta`` are ignored.
    threshold:
        Detection threshold ``λ`` on the cumulative deviation.
    min_samples:
        Grace period before detection can fire.
    """

    def __init__(
        self,
        *,
        delta: float = 0.005,
        threshold: float = 50.0,
        min_samples: int = 30,
    ) -> None:
        super().__init__()
        check_positive(delta, "delta", strict=False)
        check_positive(threshold, "threshold")
        check_positive(min_samples, "min_samples")
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self._mean = 0.0
        self._cumulative = 0.0
        self._min_cumulative = 0.0

    def update(self, error: bool | int | float) -> DriftState:
        """Fold one value; DRIFT when the PH statistic crosses ``threshold``."""
        x = float(error)
        self.n_samples_seen += 1
        self._mean += (x - self._mean) / self.n_samples_seen
        self._cumulative += x - self._mean - self.delta
        self._min_cumulative = min(self._min_cumulative, self._cumulative)
        ph = self._cumulative - self._min_cumulative
        if self.n_samples_seen >= self.min_samples and ph >= self.threshold:
            self.state = DriftState.DRIFT
        else:
            self.state = DriftState.NORMAL
        return self.state

    def reset(self) -> None:
        """Restart the test (after model adaptation)."""
        super().reset()
        self._mean = 0.0
        self._cumulative = 0.0
        self._min_cumulative = 0.0

    def state_nbytes(self) -> int:
        """A handful of scalars."""
        return 4 * 8

    def _extra_state(self) -> dict:
        return {
            "mean": float(self._mean),
            "cumulative": float(self._cumulative),
            "min_cumulative": float(self._min_cumulative),
        }

    def _set_extra_state(self, state: dict) -> None:
        self._mean = float(state["mean"])
        self._cumulative = float(state["cumulative"])
        self._min_cumulative = float(state["min_cumulative"])
