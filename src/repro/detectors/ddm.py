"""DDM — the Drift Detection Method of Gama et al. (2004).

DDM monitors the error *rate* of a classifier over a stream of Bernoulli
error indicators. With ``p_i`` the error rate after ``i`` samples and
``s_i = sqrt(p_i (1 - p_i) / i)`` its standard deviation, DDM tracks the
minimum of ``p + s`` reached so far (``p_min + s_min``) and signals

* **warning** when ``p_i + s_i ≥ p_min + 2 · s_min`` — the paper: "it
  starts a retraining of a discriminative model";
* **drift** when ``p_i + s_i ≥ p_min + 3 · s_min`` — "the retrained
  discriminative model replaces the old model".

The window size is implicit and fixed by the statistics (the paper: "the
number of samples required to judge concept drifts ... is fixed at DDM").
"""

from __future__ import annotations

from ..utils.validation import check_positive
from .base import DriftState, ErrorRateDriftDetector

__all__ = ["DDM"]


class DDM(ErrorRateDriftDetector):
    """Drift Detection Method over a stream of error indicators.

    Parameters
    ----------
    warning_level, drift_level:
        Multipliers of ``s_min`` for the warning / drift thresholds
        (classically 2 and 3).
    min_samples:
        Grace period before any signal can fire (the error-rate estimate
        is meaningless for the first few samples).
    """

    def __init__(
        self,
        *,
        warning_level: float = 2.0,
        drift_level: float = 3.0,
        min_samples: int = 30,
    ) -> None:
        super().__init__()
        check_positive(warning_level, "warning_level")
        check_positive(drift_level, "drift_level")
        check_positive(min_samples, "min_samples")
        if drift_level <= warning_level:
            from ..utils.exceptions import ConfigurationError

            raise ConfigurationError(
                f"drift_level ({drift_level}) must exceed warning_level ({warning_level})."
            )
        self.warning_level = float(warning_level)
        self.drift_level = float(drift_level)
        self.min_samples = int(min_samples)
        self._n_errors = 0
        self._p_min = float("inf")
        self._s_min = float("inf")

    def update(self, error: bool | int | float) -> DriftState:
        """Fold one error indicator; returns NORMAL / WARNING / DRIFT.

        After a DRIFT the caller is expected to retrain and call
        :meth:`reset`.
        """
        self.n_samples_seen += 1
        self._n_errors += 1 if error else 0
        i = self.n_samples_seen
        # Laplace-smoothed rate: keeps p in (0, 1) so s_min never collapses
        # to zero on an error-free prefix (which would make the very first
        # error fire a spurious drift).
        p = (self._n_errors + 1.0) / (i + 2.0)
        s = (p * (1.0 - p) / i) ** 0.5

        if i < self.min_samples:
            self.state = DriftState.NORMAL
            return self.state

        if p + s < self._p_min + self._s_min:
            self._p_min, self._s_min = p, s

        level = p + s
        if level >= self._p_min + self.drift_level * self._s_min:
            self.state = DriftState.DRIFT
        elif level >= self._p_min + self.warning_level * self._s_min:
            self.state = DriftState.WARNING
        else:
            self.state = DriftState.NORMAL
        return self.state

    def reset(self) -> None:
        """Restart after retraining: statistics and minima are cleared."""
        super().reset()
        self._n_errors = 0
        self._p_min = float("inf")
        self._s_min = float("inf")

    @property
    def error_rate(self) -> float:
        """Current estimate ``p_i`` (0 before any sample)."""
        return self._n_errors / self.n_samples_seen if self.n_samples_seen else 0.0

    def state_nbytes(self) -> int:
        """A handful of scalars — DDM's memory footprint is trivial."""
        return 6 * 8

    def _extra_state(self) -> dict:
        return {
            "n_errors": int(self._n_errors),
            "p_min": float(self._p_min),
            "s_min": float(self._s_min),
        }

    def _set_extra_state(self, state: dict) -> None:
        self._n_errors = int(state["n_errors"])
        self._p_min = float(state["p_min"])
        self._s_min = float(state["s_min"])
