"""Null detector — the paper's "Baseline (no concept drift detection)".

Implements the :class:`BatchDriftDetector` interface but never fires, so
the evaluation harness can run the no-detection configuration through the
exact same code path as every other method (Table 2's third row, Table 5's
third row).
"""

from __future__ import annotations

import numpy as np

from .base import BatchDriftDetector

__all__ = ["NoDetection"]


class NoDetection(BatchDriftDetector):
    """A detector that never detects.

    ``batch_size`` defaults to 1 so streamed updates never buffer more
    than the current sample (zero effective memory cost).
    """

    def __init__(self, batch_size: int = 1) -> None:
        super().__init__(batch_size)

    def _fit(self, X: np.ndarray) -> None:  # noqa: D102 - nothing to fit
        return None

    def _statistic(self, batch: np.ndarray) -> float:
        return 0.0

    def _threshold(self) -> float:
        return float("inf")

    def state_nbytes(self) -> int:
        """No resident state at all."""
        return 0
