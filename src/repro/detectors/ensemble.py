"""Detector ensembles — the "and their ensemble" family of §2.2.2.

The paper's taxonomy mentions that error-rate and distribution-based
detectors are often combined. :class:`VotingDetectorEnsemble` combines any
set of :class:`~repro.detectors.base.ErrorRateDriftDetector` members under
a voting policy, matching the interface so it can drop into
:class:`~repro.core.pipeline.ErrorRatePipeline` unchanged.
"""

from __future__ import annotations

from typing import Sequence

from ..utils.exceptions import ConfigurationError
from .base import DriftState, ErrorRateDriftDetector

__all__ = ["VotingDetectorEnsemble"]

_POLICIES = ("any", "majority", "all")


class VotingDetectorEnsemble(ErrorRateDriftDetector):
    """Combine several error-rate detectors with a voting policy.

    Parameters
    ----------
    members:
        The detectors to combine (each sees every update).
    policy:
        ``"any"`` (most sensitive), ``"majority"``, or ``"all"`` (most
        conservative). A member votes when its state is DRIFT.
    sticky_votes:
        When true (default) a member's drift vote persists until the
        ensemble itself fires or is reset — this lets slow members
        corroborate fast ones even if their DRIFT states don't coincide
        on the exact same sample.
    """

    def __init__(
        self,
        members: Sequence[ErrorRateDriftDetector],
        *,
        policy: str = "majority",
        sticky_votes: bool = True,
    ) -> None:
        super().__init__()
        if not members:
            raise ConfigurationError("members must be non-empty.")
        if policy not in _POLICIES:
            raise ConfigurationError(f"policy must be one of {_POLICIES}, got {policy!r}.")
        for m in members:
            if not isinstance(m, ErrorRateDriftDetector):
                raise ConfigurationError(
                    f"member {type(m).__name__} is not an ErrorRateDriftDetector."
                )
        self.members = list(members)
        self.policy = policy
        self.sticky_votes = bool(sticky_votes)
        self._votes = [False] * len(self.members)
        self.n_detections = 0

    def _combine(self, votes: int) -> bool:
        n = len(self.members)
        if self.policy == "any":
            return votes >= 1
        if self.policy == "majority":
            return votes > n // 2
        return votes == n

    def update(self, error: bool | int | float) -> DriftState:
        """Feed every member; combine their votes into one state.

        WARNING is reported when at least one member is at WARNING or has
        a pending sticky vote but the policy has not fired.
        """
        self.n_samples_seen += 1
        any_warning = False
        for i, m in enumerate(self.members):
            state = m.update(error)
            if state is DriftState.DRIFT:
                self._votes[i] = True
            elif not self.sticky_votes:
                self._votes[i] = False
            if state is DriftState.WARNING:
                any_warning = True
        votes = sum(self._votes)
        if self._combine(votes):
            self.state = DriftState.DRIFT
            self.n_detections += 1
            self._votes = [False] * len(self.members)
        elif votes > 0 or any_warning:
            self.state = DriftState.WARNING
        else:
            self.state = DriftState.NORMAL
        return self.state

    def reset(self) -> None:
        """Reset every member and clear pending votes."""
        super().reset()
        for m in self.members:
            m.reset()
        self._votes = [False] * len(self.members)

    def state_nbytes(self) -> int:
        """Sum of member footprints plus the vote flags."""
        total = len(self.members)
        for m in self.members:
            nbytes = getattr(m, "state_nbytes", None)
            total += int(nbytes()) if callable(nbytes) else 0
        return total

    def _extra_state(self) -> dict:
        return {
            "members": [m.get_state() for m in self.members],
            "votes": [bool(v) for v in self._votes],
            "n_detections": int(self.n_detections),
        }

    def _set_extra_state(self, state: dict) -> None:
        members_state = state["members"]
        if len(members_state) != len(self.members):
            raise ConfigurationError(
                f"state has {len(members_state)} members, ensemble has "
                f"{len(self.members)}."
            )
        for m, ms in zip(self.members, members_state):
            m.set_state(ms)
        self._votes = [bool(v) for v in state["votes"]]
        self.n_detections = int(state["n_detections"])
