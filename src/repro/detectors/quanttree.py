"""Quant Tree — histograms for change detection (Boracchi et al., ICML 2018).

Quant Tree partitions the feature space into ``K`` bins by a sequence of
axis-aligned splits chosen so that each bin contains a target fraction
(here the uniform ``1/K``) of the reference data. Two properties make it
attractive for the paper's comparison:

* the histogram size is **independent of the dimensionality** — each split
  stores one dimension index, one threshold, and one direction; and
* the distribution of any statistic computed on the bin counts of a test
  batch is **distribution-free**: it depends only on ``(N, K, ν)`` — the
  reference size, bin count, and batch size — so thresholds can be computed
  once by Monte-Carlo simulation on univariate uniform data and reused for
  any data distribution.

We implement the Pearson statistic

.. math::

    T = \\sum_{k=1}^{K} \\frac{(y_k - \\nu \\pi_k)^2}{\\nu \\pi_k}

with the Monte-Carlo threshold at a configurable false-positive rate
``alpha``. Thresholds are cached per ``(N, K, ν, alpha, n_sim, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_positive, check_probability
from .base import BatchDriftDetector

__all__ = ["QuantTreePartition", "QuantTree", "pearson_statistic", "quanttree_threshold"]


@dataclass(frozen=True)
class _Split:
    """One quantisation split: bin = { x : x[dim] <= thr } (or >= for right tails)."""

    dim: int
    threshold: float
    take_left: bool

    def contains(self, X: np.ndarray) -> np.ndarray:
        v = X[:, self.dim]
        return v <= self.threshold if self.take_left else v >= self.threshold


class QuantTreePartition:
    """The K-bin equal-probability partition built from reference data.

    Bins are carved sequentially: bin ``k`` removes ``≈ N/K`` remaining
    points by cutting a random tail along a random dimension. The final bin
    is the leftover region. Assignment follows the same sequential order,
    so it costs at most ``K-1`` scalar comparisons per sample.
    """

    def __init__(self, n_bins: int, *, seed: SeedLike = None) -> None:
        check_positive(n_bins, "n_bins")
        if n_bins < 2:
            raise ConfigurationError("n_bins must be >= 2.")
        self.n_bins = int(n_bins)
        self._rng = ensure_rng(seed)
        self.splits: List[_Split] = []
        self.probabilities: Optional[np.ndarray] = None
        self.n_reference: int = 0

    @property
    def is_fitted(self) -> bool:
        return self.probabilities is not None

    def fit(self, X: np.ndarray) -> "QuantTreePartition":
        """Build the partition on reference data ``X`` (``(N, d)``)."""
        X = np.asarray(X, dtype=np.float64)
        N, d = X.shape
        if N < self.n_bins:
            raise ConfigurationError(
                f"need at least n_bins={self.n_bins} reference samples, got {N}."
            )
        self.splits = []
        remaining = X
        counts = np.zeros(self.n_bins)
        for k in range(self.n_bins - 1):
            target = int(round((N - counts[:k].sum()) / (self.n_bins - k)))
            target = max(1, min(target, len(remaining) - (self.n_bins - k - 1)))
            dim = int(self._rng.integers(d))
            take_left = bool(self._rng.integers(2))
            v = remaining[:, dim]
            order = np.argsort(v, kind="stable")
            if take_left:
                thr = float(v[order[target - 1]])
                mask = v <= thr
            else:
                thr = float(v[order[len(v) - target]])
                mask = v >= thr
            self.splits.append(_Split(dim, thr, take_left))
            counts[k] = int(mask.sum())
            remaining = remaining[~mask]
        counts[self.n_bins - 1] = len(remaining)
        self.probabilities = counts / N
        self.n_reference = N
        return self

    def assign(self, X: np.ndarray) -> np.ndarray:
        """Bin index per sample (sequential split traversal)."""
        X = np.asarray(X, dtype=np.float64)
        bins = np.full(len(X), self.n_bins - 1, dtype=np.int64)
        unassigned = np.ones(len(X), dtype=bool)
        for k, split in enumerate(self.splits):
            hit = unassigned & split.contains(X)
            bins[hit] = k
            unassigned &= ~hit
        return bins

    def counts(self, X: np.ndarray) -> np.ndarray:
        """Histogram of a batch over the K bins."""
        return np.bincount(self.assign(X), minlength=self.n_bins).astype(np.float64)


def pearson_statistic(counts: np.ndarray, probabilities: np.ndarray, nu: int) -> float:
    """Pearson goodness-of-fit statistic for a batch of size ``nu``."""
    expected = nu * np.asarray(probabilities, dtype=np.float64)
    expected = np.where(expected > 0, expected, np.finfo(float).tiny)
    return float(((np.asarray(counts) - expected) ** 2 / expected).sum())


@lru_cache(maxsize=64)
def quanttree_threshold(
    n_reference: int,
    n_bins: int,
    batch_size: int,
    alpha: float,
    n_simulations: int = 2000,
    seed: int = 12345,
) -> float:
    """Distribution-free Monte-Carlo threshold for the Pearson statistic.

    Because Quant Tree statistics are distribution-free, we simulate on
    *univariate uniform* data: build a partition from ``n_reference``
    uniforms, draw stationary batches of ``batch_size`` uniforms, collect
    the statistic's null distribution, and return its ``1 - alpha``
    quantile. Cached on all arguments.
    """
    rng = np.random.default_rng(seed)
    stats = np.empty(n_simulations)
    # A fresh random partition per simulation round-trips the partition
    # randomness into the null distribution, as in the original paper.
    sims_per_tree = 20
    n_trees = (n_simulations + sims_per_tree - 1) // sims_per_tree
    i = 0
    for _ in range(n_trees):
        part = QuantTreePartition(n_bins, seed=rng).fit(rng.random((n_reference, 1)))
        for _ in range(sims_per_tree):
            if i >= n_simulations:
                break
            batch = rng.random((batch_size, 1))
            stats[i] = pearson_statistic(part.counts(batch), part.probabilities, batch_size)
            i += 1
    return float(np.quantile(stats, 1.0 - alpha))


class QuantTree(BatchDriftDetector):
    """Quant Tree batch drift detector.

    Parameters
    ----------
    batch_size:
        Samples per test batch (ν). The paper uses 480 (NSL-KDD) and 235
        (cooling fan).
    n_bins:
        Histogram bins K (paper: 32 and 16 respectively).
    alpha:
        Target false-positive rate per batch for the MC threshold.
    n_simulations:
        Monte-Carlo runs for threshold calibration.
    """

    def __init__(
        self,
        batch_size: int,
        n_bins: int = 32,
        *,
        alpha: float = 0.005,
        n_simulations: int = 2000,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(batch_size)
        check_positive(n_bins, "n_bins")
        check_probability(alpha, "alpha")
        check_positive(n_simulations, "n_simulations")
        self.n_bins = int(n_bins)
        self.alpha = float(alpha)
        self.n_simulations = int(n_simulations)
        self._rng = ensure_rng(seed)
        self.partition = QuantTreePartition(self.n_bins, seed=self._rng)
        self._cached_threshold: Optional[float] = None

    def _fit(self, X: np.ndarray) -> None:
        self.partition = QuantTreePartition(self.n_bins, seed=self._rng).fit(X)
        self._cached_threshold = quanttree_threshold(
            len(X), self.n_bins, self.batch_size, self.alpha, self.n_simulations
        )

    def _statistic(self, batch: np.ndarray) -> float:
        return pearson_statistic(
            self.partition.counts(batch), self.partition.probabilities, len(batch)
        )

    def _threshold(self) -> float:
        assert self._cached_threshold is not None
        return self._cached_threshold

    # -- memory accounting -------------------------------------------------------

    def state_nbytes(self) -> int:
        """Resident bytes: splits + bin probabilities + the batch buffer.

        The buffer is charged at full ``batch_size`` capacity because the
        device must provision for the worst case — this matches how the
        paper computes Table 4 ("data samples are stored in the device
        memory to detect concept drifts").
        """
        split_bytes = len(self.partition.splits) * (8 + 8 + 1)
        prob_bytes = self.n_bins * 8
        buffer_bytes = self.batch_size * (self.n_features or 0) * 8
        return split_bytes + prob_bytes + buffer_bytes

    # -- checkpoint protocol -----------------------------------------------------

    def _extra_state(self) -> dict:
        from ..utils.rng import get_generator_state

        splits = self.partition.splits
        return {
            "split_dims": np.array([s.dim for s in splits], dtype=np.int64),
            "split_thresholds": np.array(
                [s.threshold for s in splits], dtype=np.float64
            ),
            "split_take_left": np.array([s.take_left for s in splits], dtype=np.bool_),
            "probabilities": (
                None
                if self.partition.probabilities is None
                else self.partition.probabilities.copy()
            ),
            "n_reference": int(self.partition.n_reference),
            "cached_threshold": (
                None if self._cached_threshold is None else float(self._cached_threshold)
            ),
            "rng": get_generator_state(self._rng),
        }

    def _set_extra_state(self, state: dict) -> None:
        from ..utils.rng import set_generator_state

        set_generator_state(self._rng, state["rng"])
        # Rebuild the partition sharing self._rng, exactly as _fit does.
        partition = QuantTreePartition(self.n_bins, seed=self._rng)
        partition.splits = [
            _Split(int(d), float(t), bool(tl))
            for d, t, tl in zip(
                np.asarray(state["split_dims"], dtype=np.int64),
                np.asarray(state["split_thresholds"], dtype=np.float64),
                np.asarray(state["split_take_left"], dtype=np.bool_),
            )
        ]
        probs = state["probabilities"]
        partition.probabilities = (
            None if probs is None else np.asarray(probs, dtype=np.float64).copy()
        )
        partition.n_reference = int(state["n_reference"])
        self.partition = partition
        ct = state["cached_threshold"]
        self._cached_threshold = None if ct is None else float(ct)
