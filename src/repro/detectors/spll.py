"""SPLL — change detection via Semi-Parametric Log-Likelihood (Kuncheva 2013).

SPLL models a reference window ``W1`` semi-parametrically: ``W1`` is
clustered with k-means into ``c`` clusters and the clusters are treated as
the components of a Gaussian mixture with a **common (pooled) covariance**.
The change statistic for a test window ``W2`` is the mean, over ``x ∈ W2``,
of the *squared Mahalanobis distance to the nearest cluster mean*:

.. math::

    SPLL(W1 \\to W2) = \\frac{1}{|W2|} \\sum_{x \\in W2}
        \\min_i (x - \\mu_i)^\\top \\Sigma^{-1} (x - \\mu_i)

Under no change this is approximately the mean of lower-tail-truncated
``χ²_d`` variables; a change moves it away from its stationary value in
either direction, so Kuncheva uses the symmetrised criterion
``max(SPLL(W1→W2), SPLL(W2→W1))`` — which we implement, together with an
empirical self-calibration of the threshold (split the reference window
into disjoint halves many times, collect the null statistics, threshold at
``mean + z·std``). The calibration avoids relying on the χ² approximation,
which is poor in the paper's 511-dimensional fan configuration.

Cost note: the per-batch k-means is why the paper's Table 5 shows SPLL an
order of magnitude slower than Quant Tree.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.math import pairwise_sq_dists
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_positive
from ..clustering.kmeans import KMeans
from .base import BatchDriftDetector

__all__ = ["SPLL", "spll_statistic"]


def _pooled_covariance(
    X: np.ndarray, labels: np.ndarray, n_clusters: int, mode: str, reg: float
) -> np.ndarray:
    """Pooled within-cluster covariance (diag vector or full matrix)."""
    d = X.shape[1]
    if mode == "diag":
        acc = np.zeros(d)
    else:
        acc = np.zeros((d, d))
    for c in range(n_clusters):
        Xc = X[labels == c]
        if len(Xc) == 0:
            continue
        diff = Xc - Xc.mean(axis=0)
        if mode == "diag":
            acc += (diff**2).sum(axis=0)
        else:
            acc += diff.T @ diff
    acc /= max(len(X), 1)
    if mode == "diag":
        return acc + reg
    acc.flat[:: d + 1] += reg
    return acc


def spll_statistic(
    reference_means: np.ndarray,
    covariance: np.ndarray,
    batch: np.ndarray,
    *,
    diag: bool,
) -> float:
    """Mean min-Mahalanobis² of ``batch`` w.r.t. the reference clusters."""
    if diag:
        inv = 1.0 / covariance
        # (n, c) Mahalanobis² via scaling coordinates by 1/sqrt(var).
        Xs = batch * np.sqrt(inv)
        Ms = reference_means * np.sqrt(inv)
        d2 = pairwise_sq_dists(Xs, Ms)
    else:
        L = np.linalg.cholesky(covariance)
        Xs = np.linalg.solve(L, batch.T).T
        Ms = np.linalg.solve(L, reference_means.T).T
        d2 = pairwise_sq_dists(Xs, Ms)
    return float(d2.min(axis=1).mean())


class SPLL(BatchDriftDetector):
    """SPLL batch drift detector.

    Parameters
    ----------
    batch_size:
        Test-window size (paper: 480 for NSL-KDD, 235 for the fan data).
    n_clusters:
        k-means components ``c`` of the semi-parametric model.
    covariance:
        ``"diag"`` (default, robust in high dimension) or ``"full"``.
    symmetric:
        Use ``max(SPLL(W1→W2), SPLL(W2→W1))`` (Kuncheva's recommendation);
        the reverse direction re-clusters the test window each batch,
        which dominates the method's runtime.
    z:
        Threshold multiplier over the self-calibrated null distribution.
    n_calibration:
        Reference split repetitions used for calibration.
    """

    def __init__(
        self,
        batch_size: int,
        n_clusters: int = 3,
        *,
        covariance: Literal["diag", "full"] = "diag",
        symmetric: bool = True,
        z: float = 3.0,
        reg: float = 1e-6,
        n_calibration: int = 40,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(batch_size)
        check_positive(n_clusters, "n_clusters")
        check_positive(z, "z")
        check_positive(reg, "reg")
        check_positive(n_calibration, "n_calibration")
        if covariance not in ("diag", "full"):
            raise ConfigurationError(f"covariance must be 'diag' or 'full', got {covariance!r}.")
        self.n_clusters = int(n_clusters)
        self.covariance_mode = covariance
        self.symmetric = bool(symmetric)
        self.z = float(z)
        self.reg = float(reg)
        self.n_calibration = int(n_calibration)
        self._rng = ensure_rng(seed)
        self.reference_: Optional[np.ndarray] = None
        self.means_: Optional[np.ndarray] = None
        self.cov_: Optional[np.ndarray] = None
        self.threshold_: Optional[float] = None

    # -- model fitting --------------------------------------------------------------

    def _cluster(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        k = min(self.n_clusters, len(X))
        km = KMeans(k, n_init=2, seed=self._rng).fit(X)
        cov = _pooled_covariance(X, km.labels_, k, self.covariance_mode, self.reg)
        return km.cluster_centers_, cov

    def _fit(self, X: np.ndarray) -> None:
        if len(X) < 2 * self.n_clusters:
            raise ConfigurationError(
                f"reference window too small: {len(X)} samples for "
                f"{self.n_clusters} clusters."
            )
        self.reference_ = X.copy()
        self.means_, self.cov_ = self._cluster(X)
        self._calibrate(X)

    def _calibrate(self, X: np.ndarray) -> None:
        """Null distribution via repeated disjoint splits of the reference."""
        stats = []
        n = len(X)
        half = max(self.n_clusters + 1, min(n // 2, self.batch_size))
        for _ in range(self.n_calibration):
            idx = self._rng.permutation(n)
            w1, w2 = X[idx[:half]], X[idx[half : 2 * half]]
            if len(w2) < 2:
                break
            means, cov = self._cluster(w1)
            s = spll_statistic(means, cov, w2, diag=self.covariance_mode == "diag")
            if self.symmetric:
                means2, cov2 = self._cluster(w2)
                s = max(s, spll_statistic(means2, cov2, w1, diag=self.covariance_mode == "diag"))
            stats.append(s)
        stats = np.asarray(stats, dtype=np.float64)
        if len(stats) == 0:
            raise ConfigurationError("SPLL calibration produced no statistics.")
        self.threshold_ = float(stats.mean() + self.z * stats.std())

    # -- detection ----------------------------------------------------------------------

    def _statistic(self, batch: np.ndarray) -> float:
        diag = self.covariance_mode == "diag"
        s = spll_statistic(self.means_, self.cov_, batch, diag=diag)
        if self.symmetric and len(batch) >= 2 * self.n_clusters:
            means2, cov2 = self._cluster(batch)
            s = max(
                s,
                spll_statistic(means2, cov2, self.reference_, diag=diag),
            )
        return s

    def _threshold(self) -> float:
        assert self.threshold_ is not None
        return self.threshold_

    # -- memory accounting ----------------------------------------------------------------

    def state_nbytes(self) -> int:
        """Resident bytes: reference window + cluster model + batch buffer.

        SPLL must keep the *reference window itself* (the symmetric
        criterion re-scores it every batch) plus a full batch buffer —
        that is why it is the most memory-hungry method in Table 4.
        """
        d = self.n_features or 0
        ref = (self.reference_.nbytes if self.reference_ is not None else 0)
        means = self.n_clusters * d * 8
        cov = d * 8 if self.covariance_mode == "diag" else d * d * 8
        buffer = self.batch_size * d * 8
        return int(ref + means + cov + buffer)

    # -- checkpoint protocol ----------------------------------------------------------------

    def _extra_state(self) -> dict:
        from ..utils.rng import get_generator_state

        return {
            "reference": None if self.reference_ is None else self.reference_.copy(),
            "means": None if self.means_ is None else self.means_.copy(),
            "cov": None if self.cov_ is None else self.cov_.copy(),
            "threshold": None if self.threshold_ is None else float(self.threshold_),
            "rng": get_generator_state(self._rng),
        }

    def _set_extra_state(self, state: dict) -> None:
        from ..utils.rng import set_generator_state

        ref, means, cov = state["reference"], state["means"], state["cov"]
        self.reference_ = None if ref is None else np.asarray(ref, dtype=np.float64).copy()
        self.means_ = None if means is None else np.asarray(means, dtype=np.float64).copy()
        self.cov_ = None if cov is None else np.asarray(cov, dtype=np.float64).copy()
        thr = state["threshold"]
        self.threshold_ = None if thr is None else float(thr)
        set_generator_state(self._rng, state["rng"])
