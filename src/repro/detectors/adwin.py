"""ADWIN — ADaptive WINdowing (Bifet & Gavaldà, SDM 2007).

ADWIN keeps a variable-length window of the most recent stream values and
shrinks it whenever two large-enough sub-windows exhibit distinct enough
averages. "The window size is adaptively adjusted based on test statistics"
(paper §2.2.2). The window is stored as an *exponential histogram*: at most
``max_buckets`` buckets per capacity level ``2^r``, so memory is
``O(max_buckets · log(W))`` instead of ``O(W)``.

The cut test between a prefix (older) part with ``(n₀, μ₀)`` and a suffix
(recent) part with ``(n₁, μ₁)`` uses the variance-aware Hoeffding/Bernstein
bound of the ADWIN2 algorithm:

.. math::

    \\epsilon_{cut} = \\sqrt{\\frac{2}{m} \\sigma_W^2 \\ln\\frac{2\\ln W}{\\delta}}
                     + \\frac{2}{3m} \\ln\\frac{2 \\ln W}{\\delta},
    \\qquad m = \\frac{1}{1/n_0 + 1/n_1}

where ``σ_W²`` is the window variance. A drift is reported whenever at
least one cut fires during an update.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_positive
from .base import DriftState, ErrorRateDriftDetector

__all__ = ["ADWIN"]


@dataclass
class _Bucket:
    """One exponential-histogram bucket: ``count`` values summarised."""

    total: float
    variance: float
    count: int


class ADWIN(ErrorRateDriftDetector):
    """Adaptive-windowing drift detector over a numeric (or 0/1) stream.

    Parameters
    ----------
    delta:
        Confidence parameter of the cut test (smaller → fewer false alarms).
    max_buckets:
        Buckets per capacity level before two merge upward (MOA uses 5).
    clock:
        Run the (relatively expensive) cut scan every ``clock`` insertions.
    min_window:
        Minimum total window length / sub-window length for a cut test.
    """

    def __init__(
        self,
        delta: float = 0.002,
        *,
        max_buckets: int = 5,
        clock: int = 8,
        min_window: int = 10,
    ) -> None:
        super().__init__()
        if not 0.0 < delta < 1.0:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}.")
        check_positive(max_buckets, "max_buckets")
        check_positive(clock, "clock")
        check_positive(min_window, "min_window")
        self.delta = float(delta)
        self.max_buckets = int(max_buckets)
        self.clock = int(clock)
        self.min_window = int(min_window)
        # Oldest bucket first; bucket counts are powers of two, non-increasing
        # toward the end of the list (classic exponential histogram order).
        self._buckets: List[_Bucket] = []
        self._total = 0.0
        self._variance = 0.0  # sum of within-bucket variances (scaled by counts)
        self._width = 0
        self._ticks = 0
        self.n_detections = 0

    # -- window bookkeeping ------------------------------------------------------

    @property
    def width(self) -> int:
        """Current adaptive-window length."""
        return self._width

    @property
    def estimation(self) -> float:
        """Mean of the values currently in the window."""
        return self._total / self._width if self._width else 0.0

    def _insert(self, value: float) -> None:
        self._buckets.append(_Bucket(value, 0.0, 1))
        if self._width > 0:
            mean = self._total / self._width
            self._variance += (value - mean) ** 2 * self._width / (self._width + 1)
        self._total += value
        self._width += 1
        self._compress()

    def _compress(self) -> None:
        """Merge oldest pairs whenever a capacity level overflows."""
        level_count = 1
        while True:
            # Find buckets of this capacity; list is ordered oldest→newest and
            # counts grow toward the front after merging, so scan from the end.
            idxs = [i for i, b in enumerate(self._buckets) if b.count == level_count]
            if len(idxs) <= self.max_buckets:
                break
            i, j = idxs[0], idxs[1]  # two oldest at this level
            a, b = self._buckets[i], self._buckets[j]
            n1, n2 = a.count, b.count
            mu1, mu2 = a.total / n1, b.total / n2
            merged = _Bucket(
                a.total + b.total,
                a.variance + b.variance + (n1 * n2 / (n1 + n2)) * (mu1 - mu2) ** 2,
                n1 + n2,
            )
            self._buckets[i] = merged
            del self._buckets[j]
            level_count *= 2

    def _drop_oldest(self) -> None:
        oldest = self._buckets.pop(0)
        n = oldest.count
        mu = oldest.total / n
        if self._width > n:
            mean_rest = (self._total - oldest.total) / (self._width - n)
            self._variance -= oldest.variance + (
                n * (self._width - n) / self._width
            ) * (mu - mean_rest) ** 2
            self._variance = max(self._variance, 0.0)
        else:
            self._variance = 0.0
        self._total -= oldest.total
        self._width -= n

    # -- cut detection --------------------------------------------------------------

    def _cut_expression(self, n0: int, n1: int, mu0: float, mu1: float) -> bool:
        n = self._width
        if min(n0, n1) < max(1, self.min_window // 2):
            return False
        var_w = max(self._variance / n, 0.0)
        dd = math.log(2.0 * math.log(max(n, 2)) / self.delta)
        m = 1.0 / (1.0 / n0 + 1.0 / n1)
        eps = math.sqrt(2.0 / m * var_w * dd) + 2.0 / (3.0 * m) * dd
        return abs(mu0 - mu1) > eps

    def _detect_and_shrink(self) -> bool:
        """Scan all bucket boundaries; drop the tail while cuts fire."""
        shrunk = False
        reduced = True
        while reduced and self._width >= self.min_window:
            reduced = False
            n0, s0 = 0, 0.0
            for b in self._buckets[:-1]:
                n0 += b.count
                s0 += b.total
                n1 = self._width - n0
                if n1 <= 0:
                    break
                mu0, mu1 = s0 / n0, (self._total - s0) / n1
                if self._cut_expression(n0, n1, mu0, mu1):
                    self._drop_oldest()
                    shrunk = True
                    reduced = True
                    break
        return shrunk

    # -- public API --------------------------------------------------------------------

    def update(self, error: bool | int | float) -> DriftState:
        """Insert one value; DRIFT when the window was cut this step."""
        self.n_samples_seen += 1
        self._insert(float(error))
        self._ticks += 1
        drift = False
        if self._ticks >= self.clock and self._width >= self.min_window:
            self._ticks = 0
            drift = self._detect_and_shrink()
        if drift:
            self.n_detections += 1
            self.state = DriftState.DRIFT
        else:
            self.state = DriftState.NORMAL
        return self.state

    def reset(self) -> None:
        """Clear the window entirely."""
        super().reset()
        self._buckets.clear()
        self._total = 0.0
        self._variance = 0.0
        self._width = 0
        self._ticks = 0

    def state_nbytes(self) -> int:
        """Exponential-histogram memory: 3 floats per live bucket."""
        return len(self._buckets) * 3 * 8 + 5 * 8

    def _extra_state(self) -> dict:
        import numpy as np

        buckets = np.array(
            [[b.total, b.variance, float(b.count)] for b in self._buckets],
            dtype=np.float64,
        ).reshape(len(self._buckets), 3)
        return {
            "buckets": buckets,
            "total": float(self._total),
            "variance": float(self._variance),
            "width": int(self._width),
            "ticks": int(self._ticks),
            "n_detections": int(self.n_detections),
        }

    def _set_extra_state(self, state: dict) -> None:
        import numpy as np

        buckets = np.asarray(state["buckets"], dtype=np.float64).reshape(-1, 3)
        self._buckets = [
            _Bucket(float(t), float(v), int(c)) for t, v, c in buckets
        ]
        self._total = float(state["total"])
        self._variance = float(state["variance"])
        self._width = int(state["width"])
        self._ticks = int(state["ticks"])
        self.n_detections = int(state["n_detections"])
