"""HDDDM — Hellinger Distance Drift Detection Method (Ditzler & Polikar 2011).

A third distribution-based baseline between Quant Tree and SPLL in
sophistication: per-feature histograms of the reference and test batches
are compared with the (averaged) Hellinger distance

.. math::

    H(P, Q) = \\sqrt{ \\tfrac{1}{2} \\sum_k (\\sqrt{p_k} - \\sqrt{q_k})^2 },

and a drift is flagged when the *change* in distance between consecutive
batches exceeds an adaptive threshold ``μ_ε + z·σ_ε`` over the history of
distance changes. Like Quant Tree/SPLL it must buffer full batches —
another data point for the paper's memory argument.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.math import RunningMoments
from ..utils.validation import check_positive
from .base import BatchDriftDetector

__all__ = ["hellinger_distance", "HDDDM"]


def hellinger_distance(
    ref: np.ndarray, batch: np.ndarray, *, n_bins: int, lo: np.ndarray, hi: np.ndarray
) -> float:
    """Mean per-feature Hellinger distance between two sample sets.

    Histograms use ``n_bins`` equal-width bins over ``[lo, hi]`` per
    feature (the reference data's range, clipped for the test batch).
    """
    ref = np.asarray(ref, dtype=np.float64)
    batch = np.asarray(batch, dtype=np.float64)
    if ref.shape[1] != batch.shape[1]:
        raise ConfigurationError("ref and batch must share feature count.")
    d = ref.shape[1]
    total = 0.0
    for j in range(d):
        span = hi[j] - lo[j]
        if span <= 0:
            continue  # constant reference feature carries no signal
        edges = np.linspace(lo[j], hi[j], n_bins + 1)
        p, _ = np.histogram(np.clip(ref[:, j], lo[j], hi[j]), bins=edges)
        q, _ = np.histogram(np.clip(batch[:, j], lo[j], hi[j]), bins=edges)
        p = p / max(p.sum(), 1)
        q = q / max(q.sum(), 1)
        total += float(np.sqrt(0.5 * ((np.sqrt(p) - np.sqrt(q)) ** 2).sum()))
    return total / d


class HDDDM(BatchDriftDetector):
    """Hellinger-distance batch drift detector.

    Parameters
    ----------
    batch_size:
        Samples per test batch.
    n_bins:
        Histogram bins per feature (the original uses ``⌊√N⌋``; we default
        to that given the reference size at fit time when ``None``).
    z:
        Threshold multiplier over the distance-change history.
    """

    def __init__(
        self,
        batch_size: int,
        *,
        n_bins: Optional[int] = None,
        z: float = 3.0,
    ) -> None:
        super().__init__(batch_size)
        if n_bins is not None:
            check_positive(n_bins, "n_bins")
        check_positive(z, "z")
        self.n_bins = n_bins
        self.z = float(z)
        self.reference_: Optional[np.ndarray] = None
        self._lo: Optional[np.ndarray] = None
        self._hi: Optional[np.ndarray] = None
        self._bins: int = 0
        self._prev_distance: Optional[float] = None
        self._eps = RunningMoments()
        self._pending_threshold = float("inf")

    def _fit(self, X: np.ndarray) -> None:
        self.reference_ = X.copy()
        self._lo = X.min(axis=0)
        self._hi = X.max(axis=0)
        self._bins = self.n_bins or max(2, int(np.sqrt(len(X))))
        self._prev_distance = None
        self._eps.reset()
        self._pending_threshold = float("inf")

    def _statistic(self, batch: np.ndarray) -> float:
        """The *change* in Hellinger distance vs the previous batch.

        The adaptive threshold is frozen from the change *history* before
        folding the current change in, so a genuine jump is judged
        against the stationary past rather than against itself.
        """
        dist = hellinger_distance(
            self.reference_, batch, n_bins=self._bins, lo=self._lo, hi=self._hi
        )
        eps = 0.0 if self._prev_distance is None else abs(dist - self._prev_distance)
        self._prev_distance = dist
        if self._eps.count < 2:
            self._pending_threshold = float("inf")  # need history first
        else:
            self._pending_threshold = self._eps.mean + self.z * self._eps.std
        self._eps.update(eps)
        return eps

    def _threshold(self) -> float:
        return self._pending_threshold

    def state_nbytes(self) -> int:
        """Reference window + batch buffer + per-feature histograms."""
        if self.reference_ is None:
            return 0
        d = self.reference_.shape[1]
        return int(
            self.reference_.nbytes
            + self.batch_size * d * 8
            + 2 * self._bins * d * 8
        )

    # -- checkpoint protocol -----------------------------------------------------------

    def _extra_state(self) -> dict:
        return {
            "reference": None if self.reference_ is None else self.reference_.copy(),
            "lo": None if self._lo is None else np.asarray(self._lo).copy(),
            "hi": None if self._hi is None else np.asarray(self._hi).copy(),
            "bins": int(self._bins),
            "prev_distance": (
                None if self._prev_distance is None else float(self._prev_distance)
            ),
            "eps": self._eps.get_state(),
            "pending_threshold": float(self._pending_threshold),
        }

    def _set_extra_state(self, state: dict) -> None:
        ref, lo, hi = state["reference"], state["lo"], state["hi"]
        self.reference_ = None if ref is None else np.asarray(ref, dtype=np.float64).copy()
        self._lo = None if lo is None else np.asarray(lo, dtype=np.float64).copy()
        self._hi = None if hi is None else np.asarray(hi, dtype=np.float64).copy()
        self._bins = int(state["bins"])
        pd = state["prev_distance"]
        self._prev_distance = None if pd is None else float(pd)
        self._eps.set_state(state["eps"])
        self._pending_threshold = float(state["pending_threshold"])
