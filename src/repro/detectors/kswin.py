"""KSWIN — Kolmogorov–Smirnov windowing drift detector.

A per-feature sequential detector (Raab, Heusinger & Schleif 2020) that
keeps a sliding window of the last ``window_size`` scalar observations and
tests the most recent ``stat_size`` of them against a random sample of the
older remainder with a two-sample Kolmogorov–Smirnov test. Included as an
additional distribution-based baseline that — unlike Quant Tree and SPLL —
is *windowed per scalar statistic* rather than batched per vector, giving
the comparison a third memory/latency point between the batch methods and
the paper's O(1) proposal.

The KS two-sample test is implemented from scratch (no scipy dependency):
the p-value uses the asymptotic Kolmogorov distribution
``Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} e^{-2 k² λ²}``.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_positive, check_probability
from .base import DriftState, ErrorRateDriftDetector

__all__ = ["ks_two_sample", "KSWIN"]


def ks_two_sample(a: np.ndarray, b: np.ndarray) -> tuple[float, float]:
    """Two-sample KS statistic and asymptotic p-value.

    Returns ``(D, p)`` where ``D`` is the sup-norm distance between the
    empirical CDFs. Accurate for moderate sample sizes (≥ ~20 per side).
    """
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ConfigurationError("both samples must be non-empty.")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / n
    cdf_b = np.searchsorted(b, grid, side="right") / m
    d = float(np.abs(cdf_a - cdf_b).max())
    en = math.sqrt(n * m / (n + m))
    lam = (en + 0.12 + 0.11 / en) * d
    if lam < 1e-3:
        return d, 1.0  # the alternating series degenerates at λ→0; Q(0)=1
    # Kolmogorov distribution tail sum; converges in a handful of terms.
    p = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        p += term
        if abs(term) < 1e-10:
            break
    return d, float(min(max(p, 0.0), 1.0))


class KSWIN(ErrorRateDriftDetector):
    """KS-windowing detector over a scalar stream.

    Parameters
    ----------
    alpha:
        Test significance per update. The test runs on *every* sample, so
        this must be very small to keep the family-wise false-alarm rate
        reasonable (default 1e-4; the often-quoted 0.005 produces a false
        alarm every few hundred stationary samples).
    window_size:
        Total sliding-window length (default 100).
    stat_size:
        Size of the "recent" slice compared against the older remainder
        (default 30).
    """

    def __init__(
        self,
        *,
        alpha: float = 1e-4,
        window_size: int = 100,
        stat_size: int = 30,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        check_probability(alpha, "alpha")
        check_positive(window_size, "window_size")
        check_positive(stat_size, "stat_size")
        if stat_size >= window_size:
            raise ConfigurationError(
                f"stat_size ({stat_size}) must be < window_size ({window_size})."
            )
        self.alpha = float(alpha)
        self.window_size = int(window_size)
        self.stat_size = int(stat_size)
        self._rng = ensure_rng(seed)
        self._window: Deque[float] = deque(maxlen=window_size)
        self.last_p_value: float | None = None
        self.n_detections = 0

    def update(self, error: bool | int | float) -> DriftState:
        """Insert one value; DRIFT when recent ≠ old at level ``alpha``.

        On detection the window is reset to the recent slice (the new
        concept's sample), as in the reference implementation.
        """
        self.n_samples_seen += 1
        self._window.append(float(error))
        if len(self._window) < self.window_size:
            self.state = DriftState.NORMAL
            return self.state
        w = np.asarray(self._window)
        recent = w[-self.stat_size:]
        older = w[: -self.stat_size]
        sample = self._rng.choice(older, size=self.stat_size, replace=False)
        _, p = ks_two_sample(recent, sample)
        self.last_p_value = p
        if p < self.alpha:
            self.n_detections += 1
            keep = list(recent)
            self._window.clear()
            self._window.extend(keep)
            self.state = DriftState.DRIFT
        else:
            self.state = DriftState.NORMAL
        return self.state

    def reset(self) -> None:
        """Clear the sliding window."""
        super().reset()
        self._window.clear()
        self.last_p_value = None

    def state_nbytes(self) -> int:
        """One float window of ``window_size`` values."""
        return self.window_size * 8 + 4 * 8

    def _extra_state(self) -> dict:
        from ..utils.rng import get_generator_state

        return {
            "window": np.asarray(self._window, dtype=np.float64),
            "last_p_value": (
                None if self.last_p_value is None else float(self.last_p_value)
            ),
            "n_detections": int(self.n_detections),
            "rng": get_generator_state(self._rng),
        }

    def _set_extra_state(self, state: dict) -> None:
        from ..utils.rng import set_generator_state

        self._window = deque(
            (float(v) for v in np.asarray(state["window"], dtype=np.float64)),
            maxlen=self.window_size,
        )
        lpv = state["last_p_value"]
        self.last_p_value = None if lpv is None else float(lpv)
        self.n_detections = int(state["n_detections"])
        set_generator_state(self._rng, state["rng"])
