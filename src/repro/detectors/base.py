"""Detector interfaces: batch (distribution-based) and error-rate based.

The paper's taxonomy (§2.2.2) splits detection models into

* **distribution-based** detectors (Quant Tree, SPLL) that compare a batch
  of recent samples against a reference window — :class:`BatchDriftDetector`;
* **error-rate** detectors (DDM, ADWIN) that monitor the discriminative
  model's prediction errors — :class:`ErrorRateDriftDetector`.

Batch detectors additionally expose :meth:`BatchDriftDetector.update_one`,
which buffers samples until a full batch is available — this is precisely
the memory cost the paper's Table 4 charges them for, and the buffer size
is what :mod:`repro.device.memory` accounts.
"""

from __future__ import annotations

import abc
import enum
from typing import List, Optional

import numpy as np

from ..utils.exceptions import NotFittedError
from ..utils.validation import as_matrix, as_vector, check_positive

__all__ = ["DriftState", "BatchDriftDetector", "ErrorRateDriftDetector"]


class DriftState(enum.Enum):
    """Three-level detector output used by error-rate detectors (DDM)."""

    NORMAL = "normal"
    WARNING = "warning"
    DRIFT = "drift"


class BatchDriftDetector(abc.ABC):
    """Distribution-based detector over fixed-size batches.

    Lifecycle: :meth:`fit_reference` on stationary (training) data, then
    either :meth:`detect_batch` on explicit batches or :meth:`update_one`
    per streamed sample (which fills an internal buffer of ``batch_size``
    samples and tests when full — the paper streams its datasets this way).
    """

    def __init__(self, batch_size: int) -> None:
        check_positive(batch_size, "batch_size")
        self.batch_size = int(batch_size)
        self.n_features: Optional[int] = None
        self._buffer: List[np.ndarray] = []
        #: Number of batch tests run so far (diagnostics).
        self.n_tests: int = 0
        #: Statistic value of the most recent test.
        self.last_statistic: Optional[float] = None

    @property
    def is_fitted(self) -> bool:
        return self.n_features is not None

    # -- abstract hooks ----------------------------------------------------------

    @abc.abstractmethod
    def _fit(self, X: np.ndarray) -> None:
        """Build the reference model from the training window."""

    @abc.abstractmethod
    def _statistic(self, batch: np.ndarray) -> float:
        """Test statistic of one batch against the reference model."""

    @abc.abstractmethod
    def _threshold(self) -> float:
        """Detection threshold for the statistic."""

    # -- public API ----------------------------------------------------------------

    def fit_reference(self, X: np.ndarray) -> "BatchDriftDetector":
        """Fit the reference model on stationary data ``X``."""
        X = as_matrix(X, name="X")
        self._fit(X)
        self.n_features = X.shape[1]
        self._buffer.clear()
        self.n_tests = 0
        self.last_statistic = None
        return self

    def detect_batch(self, batch: np.ndarray) -> bool:
        """Test one full batch; returns True when drift is detected."""
        if not self.is_fitted:
            raise NotFittedError(self, "detect_batch")
        batch = as_matrix(batch, name="batch", n_features=self.n_features)
        stat = float(self._statistic(batch))
        self.n_tests += 1
        self.last_statistic = stat
        return stat >= self._threshold()

    def update_one(self, x: np.ndarray) -> bool:
        """Stream one sample; tests when ``batch_size`` samples accumulate.

        Returns True only on the sample that completes a drifting batch.
        The internal buffer is the batch-method memory cost of Table 4.
        """
        if not self.is_fitted:
            raise NotFittedError(self, "update_one")
        self._buffer.append(as_vector(x, name="x", n_features=self.n_features))
        if len(self._buffer) < self.batch_size:
            return False
        batch = np.asarray(self._buffer)
        self._buffer.clear()
        return self.detect_batch(batch)

    @property
    def buffered_samples(self) -> int:
        """Samples currently held in the streaming buffer."""
        return len(self._buffer)

    def reset_stream(self) -> None:
        """Drop buffered samples (e.g. after an adaptation phase)."""
        self._buffer.clear()

    # -- checkpoint protocol ------------------------------------------------------

    def _extra_state(self) -> dict:
        """Subclass hook: additional mutable fields to checkpoint."""
        return {}

    def _set_extra_state(self, state: dict) -> None:
        """Subclass hook: restore the fields from :meth:`_extra_state`."""

    def get_state(self) -> dict:
        """Snapshot the streaming buffer, counters, and subclass state."""
        return {
            "n_features": None if self.n_features is None else int(self.n_features),
            "buffer": np.asarray(self._buffer) if self._buffer else None,
            "n_tests": int(self.n_tests),
            "last_statistic": (
                None if self.last_statistic is None else float(self.last_statistic)
            ),
            "extra": self._extra_state(),
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot."""
        nf = state["n_features"]
        self.n_features = None if nf is None else int(nf)
        buffer = state["buffer"]
        self._buffer = [] if buffer is None else [row.copy() for row in np.asarray(buffer)]
        self.n_tests = int(state["n_tests"])
        ls = state["last_statistic"]
        self.last_statistic = None if ls is None else float(ls)
        self._set_extra_state(state["extra"])


class ErrorRateDriftDetector(abc.ABC):
    """Detector fed with per-sample prediction correctness.

    These methods "need a labeled teacher dataset to detect a concept
    drift" (§2.2.2) — the evaluation harness supplies ground-truth
    correctness; on a real device that label stream is usually unavailable,
    which is the paper's argument against them.
    """

    def __init__(self) -> None:
        self.n_samples_seen = 0
        self.state = DriftState.NORMAL

    @abc.abstractmethod
    def update(self, error: bool | int | float) -> DriftState:
        """Fold one error indicator (1 = misprediction); returns the state."""

    def reset(self) -> None:
        """Restart monitoring (after the model has been retrained)."""
        self.n_samples_seen = 0
        self.state = DriftState.NORMAL

    # -- checkpoint protocol ------------------------------------------------------

    def _extra_state(self) -> dict:
        """Subclass hook: additional mutable fields to checkpoint."""
        return {}

    def _set_extra_state(self, state: dict) -> None:
        """Subclass hook: restore the fields from :meth:`_extra_state`."""

    def get_state(self) -> dict:
        """Snapshot the sample counter, drift state, and subclass state."""
        return {
            "n_samples_seen": int(self.n_samples_seen),
            "state": self.state.value,
            "extra": self._extra_state(),
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot."""
        self.n_samples_seen = int(state["n_samples_seen"])
        self.state = DriftState(state["state"])
        self._set_extra_state(state["extra"])
