"""Gaussian Mixture Model fitted by Expectation-Maximisation.

SPLL (Kuncheva 2013) models the k-means clusters of its reference window as
a Gaussian mixture with a *tied* (common) covariance matrix before scoring
the test window with a semi-parametric log-likelihood. This module provides
that model from scratch, plus the usual diagonal / spherical / full
covariance options so the GMM is independently useful.

The E-step works in the log domain throughout (stable responsibilities via
``logsumexp``), and covariances are regularised with ``reg_covar`` on the
diagonal so high-dimensional, low-sample windows (511 features, 235-sample
batches in the paper's fan configuration) stay invertible.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

from ..utils.exceptions import ConfigurationError, NotFittedError
from ..utils.math import logsumexp
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import as_matrix, check_positive
from .kmeans import KMeans

__all__ = ["GaussianMixture"]

CovarianceType = Literal["full", "tied", "diag", "spherical"]
_LOG_2PI = float(np.log(2.0 * np.pi))


class GaussianMixture:
    """EM-fitted Gaussian mixture.

    Parameters
    ----------
    n_components:
        Number of mixture components.
    covariance_type:
        ``"full"`` (one PSD matrix per component), ``"tied"`` (one shared
        matrix — SPLL's choice), ``"diag"``, or ``"spherical"``.
    reg_covar:
        Ridge added to covariance diagonals each M-step.
    max_iter, tol:
        EM budget and mean log-likelihood convergence tolerance.

    Attributes
    ----------
    weights_, means_, covariances_:
        Fitted parameters (``covariances_`` shape depends on the type).
    converged_, n_iter_, lower_bound_:
        EM diagnostics.
    """

    def __init__(
        self,
        n_components: int = 1,
        *,
        covariance_type: CovarianceType = "full",
        reg_covar: float = 1e-6,
        max_iter: int = 100,
        tol: float = 1e-4,
        seed: SeedLike = None,
    ) -> None:
        check_positive(n_components, "n_components")
        check_positive(reg_covar, "reg_covar", strict=False)
        check_positive(max_iter, "max_iter")
        check_positive(tol, "tol", strict=False)
        if covariance_type not in ("full", "tied", "diag", "spherical"):
            raise ConfigurationError(
                f"unknown covariance_type {covariance_type!r}."
            )
        self.n_components = int(n_components)
        self.covariance_type: CovarianceType = covariance_type
        self.reg_covar = float(reg_covar)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self._rng = ensure_rng(seed)
        self.weights_: Optional[np.ndarray] = None
        self.means_: Optional[np.ndarray] = None
        self.covariances_: Optional[np.ndarray] = None
        self.converged_: bool = False
        self.n_iter_: int = 0
        self.lower_bound_: float = -np.inf

    @property
    def is_fitted(self) -> bool:
        return self.means_ is not None

    # -- log density ----------------------------------------------------------

    def _precisions(self) -> tuple[np.ndarray, np.ndarray]:
        """Cholesky-based precisions and log-determinants per component."""
        d = self.means_.shape[1]
        if self.covariance_type == "full":
            chols = np.array([np.linalg.cholesky(c) for c in self.covariances_])
            logdets = 2.0 * np.array(
                [np.log(np.diag(L)).sum() for L in chols]
            )
            return chols, logdets
        if self.covariance_type == "tied":
            L = np.linalg.cholesky(self.covariances_)
            logdet = 2.0 * float(np.log(np.diag(L)).sum())
            return np.repeat(L[None], self.n_components, axis=0), np.full(
                self.n_components, logdet
            )
        if self.covariance_type == "diag":
            logdets = np.log(self.covariances_).sum(axis=1)
            return self.covariances_, logdets
        # spherical
        logdets = d * np.log(self.covariances_)
        return self.covariances_, logdets

    def _log_prob_components(self, X: np.ndarray) -> np.ndarray:
        """``(n, k)`` log N(x | mu_k, Sigma_k)."""
        n, d = X.shape
        out = np.empty((n, self.n_components))
        if self.covariance_type in ("full", "tied"):
            chols, logdets = self._precisions()
            for k in range(self.n_components):
                diff = X - self.means_[k]
                # Solve L z = diff^T on the Cholesky factor (exact Mahalanobis).
                z = np.linalg.solve(chols[k], diff.T).T
                maha = np.einsum("ij,ij->i", z, z)
                out[:, k] = -0.5 * (d * _LOG_2PI + logdets[k] + maha)
        elif self.covariance_type == "diag":
            covs, logdets = self._precisions()
            for k in range(self.n_components):
                diff = X - self.means_[k]
                maha = ((diff**2) / covs[k]).sum(axis=1)
                out[:, k] = -0.5 * (d * _LOG_2PI + logdets[k] + maha)
        else:  # spherical
            covs, logdets = self._precisions()
            for k in range(self.n_components):
                diff = X - self.means_[k]
                maha = (diff**2).sum(axis=1) / covs[k]
                out[:, k] = -0.5 * (d * _LOG_2PI + logdets[k] + maha)
        return out

    def _weighted_log_prob(self, X: np.ndarray) -> np.ndarray:
        return self._log_prob_components(X) + np.log(self.weights_)[None, :]

    # -- EM -------------------------------------------------------------------

    def _m_step(self, X: np.ndarray, resp: np.ndarray) -> None:
        n, d = X.shape
        nk = resp.sum(axis=0) + 1e-12
        self.weights_ = nk / n
        self.means_ = (resp.T @ X) / nk[:, None]
        if self.covariance_type == "full":
            covs = np.empty((self.n_components, d, d))
            for k in range(self.n_components):
                diff = X - self.means_[k]
                covs[k] = (resp[:, k][:, None] * diff).T @ diff / nk[k]
                covs[k].flat[:: d + 1] += self.reg_covar
            self.covariances_ = covs
        elif self.covariance_type == "tied":
            cov = np.zeros((d, d))
            for k in range(self.n_components):
                diff = X - self.means_[k]
                cov += (resp[:, k][:, None] * diff).T @ diff
            cov /= n
            cov.flat[:: d + 1] += self.reg_covar
            self.covariances_ = cov
        elif self.covariance_type == "diag":
            covs = np.empty((self.n_components, d))
            for k in range(self.n_components):
                diff = X - self.means_[k]
                covs[k] = (resp[:, k][:, None] * diff**2).sum(axis=0) / nk[k]
            self.covariances_ = covs + self.reg_covar
        else:  # spherical
            covs = np.empty(self.n_components)
            for k in range(self.n_components):
                diff = X - self.means_[k]
                covs[k] = (resp[:, k] * (diff**2).sum(axis=1)).sum() / (nk[k] * d)
            self.covariances_ = covs + self.reg_covar

    def fit(self, X: np.ndarray) -> "GaussianMixture":
        """EM-fit the mixture, initialised from k-means assignments."""
        X = as_matrix(X, name="X")
        if len(X) < self.n_components:
            raise ConfigurationError(
                f"n_components={self.n_components} exceeds the {len(X)} samples."
            )
        km = KMeans(self.n_components, n_init=2, seed=self._rng).fit(X)
        resp = np.zeros((len(X), self.n_components))
        resp[np.arange(len(X)), km.labels_] = 1.0
        self._m_step(X, resp)
        prev = -np.inf
        self.converged_ = False
        for self.n_iter_ in range(1, self.max_iter + 1):
            wlp = self._weighted_log_prob(X)
            norm = logsumexp(wlp, axis=1)
            resp = np.exp(wlp - norm[:, None])
            self.lower_bound_ = float(norm.mean())
            if abs(self.lower_bound_ - prev) < self.tol:
                self.converged_ = True
                break
            prev = self.lower_bound_
            self._m_step(X, resp)
        return self

    # -- inference --------------------------------------------------------------

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Per-sample log density ``log p(x)``."""
        if not self.is_fitted:
            raise NotFittedError(self, "score_samples")
        X = as_matrix(X, name="X", n_features=self.means_.shape[1])
        return logsumexp(self._weighted_log_prob(X), axis=1)

    def score(self, X: np.ndarray) -> float:
        """Mean log density over ``X``."""
        return float(self.score_samples(X).mean())

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most-responsible component per sample."""
        if not self.is_fitted:
            raise NotFittedError(self, "predict")
        X = as_matrix(X, name="X", n_features=self.means_.shape[1])
        return self._weighted_log_prob(X).argmax(axis=1)

    def sample(self, n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``n`` samples from the fitted mixture."""
        if not self.is_fitted:
            raise NotFittedError(self, "sample")
        rng = rng or self._rng
        d = self.means_.shape[1]
        comps = rng.choice(self.n_components, size=n, p=self.weights_)
        out = np.empty((n, d))
        for k in range(self.n_components):
            mask = comps == k
            m = int(mask.sum())
            if m == 0:
                continue
            if self.covariance_type == "full":
                L = np.linalg.cholesky(self.covariances_[k])
            elif self.covariance_type == "tied":
                L = np.linalg.cholesky(self.covariances_)
            elif self.covariance_type == "diag":
                L = np.diag(np.sqrt(self.covariances_[k]))
            else:
                L = np.sqrt(self.covariances_[k]) * np.eye(d)
            out[mask] = self.means_[k] + rng.normal(size=(m, d)) @ L.T
        return out
