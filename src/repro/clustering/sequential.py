"""Sequential (online) k-means — the O(1)-memory clustering primitive.

The paper's Update_Coord (Algorithm 4) *is* one step of sequential k-means:

.. math::

    label = \\arg\\min_c \\lVert cor[c] - x \\rVert, \\qquad
    cor[label] \\leftarrow \\frac{cor[label] \\cdot num[label] + x}{num[label] + 1}

This module provides that primitive as a reusable estimator, including the
exponentially-weighted variant the paper mentions in §3.2 ("it is possible
to assign a higher weight to a newer sample ... so that they can represent
'recent' test centroids").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..utils.exceptions import ConfigurationError, NotFittedError
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import as_matrix, as_vector, check_positive

__all__ = ["sequential_mean_update", "ewma_update", "SequentialKMeans"]


def sequential_mean_update(
    centroid: np.ndarray, count: int, x: np.ndarray
) -> tuple[np.ndarray, int]:
    """One exact running-mean step: ``(c*n + x) / (n + 1)``.

    Returns the new centroid (a fresh array) and the new count. After ``n``
    updates starting from count 0 the centroid equals the arithmetic mean of
    the ``n`` samples — the invariant the property tests pin down.
    """
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}.")
    c = np.asarray(centroid, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if count == 0:
        return x.copy(), 1
    return (c * count + x) / (count + 1), count + 1


def ewma_update(centroid: np.ndarray, x: np.ndarray, alpha: float) -> np.ndarray:
    """Exponentially-weighted centroid update ``c ← (1-α)·c + α·x``.

    ``alpha`` close to 1 weights recent samples heavily (short memory).
    """
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}.")
    c = np.asarray(centroid, dtype=np.float64)
    return (1.0 - alpha) * c + alpha * np.asarray(x, dtype=np.float64)


class SequentialKMeans:
    """Online k-means over a stream of samples.

    Keeps ``k`` centroids and per-centroid counts; each ``partial_fit``
    assigns the sample to the nearest centroid (L2 by default, L1 optionally
    — the paper's microcontroller code uses L1 everywhere) and applies the
    exact running-mean update, or the EWMA update when ``alpha`` is set.

    Parameters
    ----------
    n_clusters:
        Number of centroids.
    metric:
        ``"l2"`` or ``"l1"`` assignment metric.
    alpha:
        ``None`` → exact running mean; otherwise EWMA weight in (0, 1].
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        metric: str = "l2",
        alpha: Optional[float] = None,
        seed: SeedLike = None,
    ) -> None:
        check_positive(n_clusters, "n_clusters")
        if metric not in ("l1", "l2"):
            raise ConfigurationError(f"metric must be 'l1' or 'l2', got {metric!r}.")
        if alpha is not None and not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}.")
        self.n_clusters = int(n_clusters)
        self.metric = metric
        self.alpha = alpha
        self._rng = ensure_rng(seed)
        self.cluster_centers_: Optional[np.ndarray] = None
        self.counts_: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self.cluster_centers_ is not None

    def initialize(self, centers: np.ndarray, counts: Optional[np.ndarray] = None) -> "SequentialKMeans":
        """Set initial centroids explicitly (e.g. from Init_Coord)."""
        centers = as_matrix(centers, name="centers")
        if len(centers) != self.n_clusters:
            raise ConfigurationError(
                f"expected {self.n_clusters} centres, got {len(centers)}."
            )
        self.cluster_centers_ = centers.copy()
        if counts is None:
            self.counts_ = np.ones(self.n_clusters, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            if counts.shape != (self.n_clusters,) or np.any(counts < 0):
                raise ConfigurationError("counts must be k non-negative integers.")
            self.counts_ = counts.copy()
        return self

    def initialize_random(self, X: np.ndarray) -> "SequentialKMeans":
        """Seed centroids with ``k`` distinct random samples from ``X``."""
        X = as_matrix(X, name="X")
        if len(X) < self.n_clusters:
            raise ConfigurationError("not enough samples to seed the centroids.")
        idx = self._rng.choice(len(X), size=self.n_clusters, replace=False)
        return self.initialize(X[idx])

    def _distances(self, x: np.ndarray) -> np.ndarray:
        diff = self.cluster_centers_ - x
        if self.metric == "l1":
            return np.abs(diff).sum(axis=1)
        return np.einsum("ij,ij->i", diff, diff)

    def predict_one(self, x: np.ndarray) -> int:
        """Nearest-centroid index for one sample."""
        if not self.is_fitted:
            raise NotFittedError(self, "predict_one")
        x = as_vector(x, name="x", n_features=self.cluster_centers_.shape[1])
        return int(self._distances(x).argmin())

    def partial_fit(self, x: np.ndarray) -> int:
        """Assign one sample and update its centroid; returns the label."""
        label = self.predict_one(x)
        x = as_vector(x, name="x", n_features=self.cluster_centers_.shape[1])
        if self.alpha is None:
            c, n = sequential_mean_update(
                self.cluster_centers_[label], int(self.counts_[label]), x
            )
            self.cluster_centers_[label] = c
            self.counts_[label] = n
        else:
            self.cluster_centers_[label] = ewma_update(
                self.cluster_centers_[label], x, self.alpha
            )
            self.counts_[label] += 1
        return label

    def fit(self, X: np.ndarray) -> "SequentialKMeans":
        """Stream every row of ``X`` through ``partial_fit``.

        Seeds the centroids from the first ``k`` rows if uninitialised.
        """
        X = as_matrix(X, name="X")
        if not self.is_fitted:
            if len(X) < self.n_clusters:
                raise ConfigurationError("not enough samples to seed the centroids.")
            self.initialize(X[: self.n_clusters])
            rest = X[self.n_clusters :]
        else:
            rest = X
        for row in rest:
            self.partial_fit(row)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centroid labels for a batch (no centroid updates)."""
        if not self.is_fitted:
            raise NotFittedError(self, "predict")
        X = as_matrix(X, name="X", n_features=self.cluster_centers_.shape[1])
        return np.array([self.predict_one(row) for row in X], dtype=np.int64)
