"""Batch k-means (Lloyd's algorithm) with k-means++ seeding.

Used by the SPLL baseline detector (Kuncheva 2013 clusters the reference
window with k-means before fitting its Gaussian model) and by the
unsupervised initial-labelling step the paper assumes in §3.2 ("it is
assumed that these initial samples can be labeled with a clustering
algorithm such as k-means").

The implementation is fully vectorised: assignment is one pairwise-distance
matrix + argmin, the update is a segmented mean via ``np.add.at``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..utils.exceptions import ConfigurationError, NotFittedError
from ..utils.math import pairwise_sq_dists
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import as_matrix, check_positive

__all__ = ["kmeans_plus_plus_init", "KMeans"]


def kmeans_plus_plus_init(
    X: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii 2007).

    The first centre is uniform; each subsequent centre is drawn with
    probability proportional to the squared distance to the nearest centre
    chosen so far. Returns an ``(n_clusters, n_features)`` array.
    """
    X = as_matrix(X, name="X")
    n = len(X)
    if n_clusters > n:
        raise ConfigurationError(
            f"n_clusters={n_clusters} exceeds the {n} available samples."
        )
    centers = np.empty((n_clusters, X.shape[1]))
    centers[0] = X[rng.integers(n)]
    closest = pairwise_sq_dists(X, centers[:1]).ravel()
    for k in range(1, n_clusters):
        total = closest.sum()
        if total <= 0:  # all points coincide with chosen centres
            centers[k:] = centers[0]
            break
        probs = closest / total
        centers[k] = X[rng.choice(n, p=probs)]
        np.minimum(closest, pairwise_sq_dists(X, centers[k : k + 1]).ravel(), out=closest)
    return centers


class KMeans:
    """Lloyd's k-means with k-means++ (or random / user-provided) init.

    Parameters
    ----------
    n_clusters:
        Number of centroids ``k``.
    n_init:
        Restarts; the run with the lowest inertia wins.
    max_iter, tol:
        Lloyd iteration budget and centre-movement convergence tolerance.
    init:
        ``"k-means++"``, ``"random"``, or an ``(k, d)`` array of centres.

    Attributes
    ----------
    cluster_centers_:
        ``(k, d)`` fitted centroids.
    labels_:
        Training-set assignments.
    inertia_:
        Sum of squared distances to the closest centroid.
    n_iter_:
        Lloyd iterations of the winning run.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        *,
        n_init: int = 4,
        max_iter: int = 300,
        tol: float = 1e-6,
        init: str | np.ndarray = "k-means++",
        seed: SeedLike = None,
    ) -> None:
        check_positive(n_clusters, "n_clusters")
        check_positive(n_init, "n_init")
        check_positive(max_iter, "max_iter")
        check_positive(tol, "tol", strict=False)
        if isinstance(init, str) and init not in ("k-means++", "random"):
            raise ConfigurationError(f"unknown init {init!r}.")
        self.n_clusters = int(n_clusters)
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.init = init
        self._rng = ensure_rng(seed)
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None
        self.n_iter_: Optional[int] = None

    # -- internals -----------------------------------------------------------

    def _initial_centers(self, X: np.ndarray) -> np.ndarray:
        if isinstance(self.init, np.ndarray):
            centers = as_matrix(self.init, name="init", n_features=X.shape[1])
            if len(centers) != self.n_clusters:
                raise ConfigurationError(
                    f"init has {len(centers)} centres, expected {self.n_clusters}."
                )
            return centers.copy()
        if self.init == "random":
            idx = self._rng.choice(len(X), size=self.n_clusters, replace=False)
            return X[idx].copy()
        return kmeans_plus_plus_init(X, self.n_clusters, self._rng)

    def _lloyd(self, X: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray, float, int]:
        n_iter = 0
        labels = np.zeros(len(X), dtype=np.int64)
        for n_iter in range(1, self.max_iter + 1):
            d = pairwise_sq_dists(X, centers)
            labels = d.argmin(axis=1)
            new_centers = np.zeros_like(centers)
            counts = np.bincount(labels, minlength=self.n_clusters).astype(np.float64)
            np.add.at(new_centers, labels, X)
            empty = counts == 0
            # Re-seed empty clusters at the points farthest from any centre.
            if empty.any():
                far = d.min(axis=1).argsort()[::-1]
                for j, k in enumerate(np.flatnonzero(empty)):
                    new_centers[k] = X[far[j % len(far)]]
                    counts[k] = 1.0
            new_centers /= counts[:, None]
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if shift <= self.tol:
                break
        d = pairwise_sq_dists(X, centers)
        labels = d.argmin(axis=1)
        inertia = float(d[np.arange(len(X)), labels].sum())
        return centers, labels, inertia, n_iter

    # -- public API -----------------------------------------------------------

    def fit(self, X: np.ndarray) -> "KMeans":
        """Cluster ``X``; keeps the best of ``n_init`` restarts."""
        X = as_matrix(X, name="X")
        if len(X) < self.n_clusters:
            raise ConfigurationError(
                f"n_clusters={self.n_clusters} exceeds the {len(X)} samples."
            )
        n_restarts = 1 if isinstance(self.init, np.ndarray) else self.n_init
        best: Optional[tuple] = None
        for _ in range(n_restarts):
            result = self._lloyd(X, self._initial_centers(X))
            if best is None or result[2] < best[2]:
                best = result
        assert best is not None
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centroid assignment for new samples."""
        if self.cluster_centers_ is None:
            raise NotFittedError(self, "predict")
        X = as_matrix(X, name="X", n_features=self.cluster_centers_.shape[1])
        return pairwise_sq_dists(X, self.cluster_centers_).argmin(axis=1)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        """Fit and return training-set labels."""
        return self.fit(X).labels_

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Distances (Euclidean) from each sample to each centroid."""
        if self.cluster_centers_ is None:
            raise NotFittedError(self, "transform")
        X = as_matrix(X, name="X", n_features=self.cluster_centers_.shape[1])
        return np.sqrt(pairwise_sq_dists(X, self.cluster_centers_))
