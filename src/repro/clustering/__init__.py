"""From-scratch clustering substrate: k-means, sequential k-means, GMM."""

from .gmm import GaussianMixture
from .kmeans import KMeans, kmeans_plus_plus_init
from .sequential import SequentialKMeans, ewma_update, sequential_mean_update

__all__ = [
    "KMeans",
    "kmeans_plus_plus_init",
    "SequentialKMeans",
    "sequential_mean_update",
    "ewma_update",
    "GaussianMixture",
]
