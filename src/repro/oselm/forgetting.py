"""Forgetting-factor OS-ELM — the learning rule inside ONLAD.

ONLAD (Tsukada, Kondo & Matsutani 2020) extends OS-ELM with an
exponential-forgetting mechanism so the model tracks non-stationary data:
old samples are discounted by a factor ``α ∈ (0, 1]`` at every step
(``α = 1`` recovers plain OS-ELM). This is exactly recursive least squares
with a forgetting factor:

.. math::

   k = \\frac{P h^\\top}{\\alpha + h P h^\\top}, \\qquad
   \\beta \\leftarrow \\beta + k (t - h \\beta), \\qquad
   P \\leftarrow \\frac{P - k\\, (h P)}{\\alpha}.

The paper evaluates ONLAD as its passive-approach baseline with
``α = 0.97`` (NSL-KDD) and ``α = 0.99`` (cooling fan), and observes that
tuning ``α`` is difficult — accuracy decays even before the drift when the
factor is too aggressive. The ablation bench sweeps ``α`` to reproduce that
observation.
"""

from __future__ import annotations

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.rng import SeedLike
from .oselm import OSELM

__all__ = ["ForgettingOSELM"]


class ForgettingOSELM(OSELM):
    """OS-ELM whose sequential updates apply a forgetting factor.

    Parameters
    ----------
    forgetting_factor:
        ``α ∈ (0, 1]``. Effective memory is roughly ``1 / (1 - α)``
        samples (≈33 at the paper's 0.97, ≈100 at 0.99).

    Notes
    -----
    Only the single-sample path differs from :class:`OSELM`; chunked
    ``partial_fit`` applies the rank-1 rule row by row, which is the exact
    chunk generalisation for RLS with forgetting.
    """

    def __init__(
        self,
        n_inputs: int,
        n_hidden: int,
        n_outputs: int,
        *,
        forgetting_factor: float = 0.97,
        activation: str = "sigmoid",
        weight_scale: float = 1.0,
        reg: float = 1e-3,
        seed: SeedLike = None,
    ) -> None:
        if not 0.0 < forgetting_factor <= 1.0:
            raise ConfigurationError(
                f"forgetting_factor must be in (0, 1], got {forgetting_factor!r}."
            )
        super().__init__(
            n_inputs,
            n_hidden,
            n_outputs,
            activation=activation,
            weight_scale=weight_scale,
            reg=reg,
            seed=seed,
        )
        self.forgetting_factor = float(forgetting_factor)

    def partial_fit(self, X: np.ndarray, T: np.ndarray) -> "ForgettingOSELM":
        """Fold a chunk row by row with forgetting between rows."""
        from ..utils.validation import as_matrix

        X = as_matrix(X, name="X", n_features=self.n_inputs)
        T = self._as_targets(T, len(X))
        for i in range(len(X)):
            self.partial_fit_one(X[i], T[i])
        return self

    def _rank1_update(self, h: np.ndarray, t: np.ndarray) -> None:
        a = self.forgetting_factor
        Ph = self.P @ h[0]
        denom = a + float(h[0] @ Ph)
        k = Ph / denom
        err = t[0] - h[0] @ self.beta
        self.beta += np.outer(k, err)
        self.P -= np.outer(k, Ph)
        self.P /= a
        self._symmetrize()
