"""Multi-instance discriminative model (paper §3.1, Figure 2).

"The same number of OS-ELM based neural networks (called 'instances') as
the number of labels in the training dataset are used. For each label ...
a discriminative model instance is trained with the data belonging to the
label. ... the smallest anomaly score among all the instances is used as
the final prediction result. For the sequential training, a single model
instance that outputs the smallest anomaly score (i.e. the 'closest'
instance) trains the input data sequentially."

Constructed with ``forgetting_factor`` set, this same class *is* the
paper's ONLAD baseline (passive approach): forgetting autoencoder instances
continuously retrained on every sample.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..telemetry import Telemetry, get_telemetry
from ..utils.exceptions import ConfigurationError, NotFittedError
from ..utils.rng import SeedLike, spawn_rngs
from ..utils.validation import as_matrix, as_vector, check_labels, check_positive
from .autoencoder import ErrorMetric, OSELMAutoencoder

__all__ = ["MultiInstanceModel"]


class MultiInstanceModel:
    """One OS-ELM autoencoder per label; predict = argmin anomaly score.

    Parameters
    ----------
    n_features, n_hidden:
        Autoencoder geometry, shared by all instances.
    n_labels:
        Number of instances ``C``.
    forgetting_factor:
        ``None`` → plain OS-ELM instances (the paper's active-approach
        discriminative model); a float in (0, 1] → ONLAD-style instances.
    error_metric, activation, weight_scale, reg:
        Forwarded to each :class:`OSELMAutoencoder`.
    seed:
        One seed reproduces the whole ensemble (independent child RNGs per
        instance).
    """

    def __init__(
        self,
        n_features: int,
        n_hidden: int,
        n_labels: int,
        *,
        forgetting_factor: float | None = None,
        error_metric: ErrorMetric = "mse",
        activation: str = "sigmoid",
        weight_scale: float = 1.0,
        reg: float = 1e-3,
        seed: SeedLike = None,
    ) -> None:
        check_positive(n_labels, "n_labels")
        rngs = spawn_rngs(seed, n_labels)
        self.instances: list[OSELMAutoencoder] = [
            OSELMAutoencoder(
                n_features,
                n_hidden,
                error_metric=error_metric,
                forgetting_factor=forgetting_factor,
                activation=activation,
                weight_scale=weight_scale,
                reg=reg,
                seed=rngs[c],
            )
            for c in range(n_labels)
        ]
        self.n_features = int(n_features)
        self.n_hidden = int(n_hidden)
        self.n_labels = int(n_labels)
        self.forgetting_factor = forgetting_factor
        #: telemetry hub (the process default; reassign for private capture)
        self.telemetry: Telemetry = get_telemetry()
        # Externally computed (label, score) rows keyed to a stream index;
        # see prime_scores. Never checkpointed — purely a serving cache.
        self._primed: Optional[tuple] = None

    @property
    def is_fitted(self) -> bool:
        return all(inst.is_fitted for inst in self.instances)

    # -- training ---------------------------------------------------------------

    def fit_initial(self, X: np.ndarray, y: np.ndarray) -> "MultiInstanceModel":
        """Initial phase: train instance ``c`` on the samples labelled ``c``.

        Labels may come from ground truth or from a clustering algorithm
        (the paper assumes k-means labelling for the unsupervised case).
        Every label must contribute at least one sample.
        """
        X = as_matrix(X, name="X", n_features=self.n_features)
        y = check_labels(y, n_classes=self.n_labels, name="y")
        if len(X) != len(y):
            raise ConfigurationError(
                f"X has {len(X)} samples but y has {len(y)} labels."
            )
        self._primed = None
        for c in range(self.n_labels):
            Xc = X[y == c]
            if len(Xc) == 0:
                raise ConfigurationError(
                    f"label {c} has no initial-training samples."
                )
            self.instances[c].fit_initial(Xc)
        return self

    def partial_fit_one(self, x: np.ndarray, label: Optional[int] = None) -> int:
        """Sequentially train one instance on one sample.

        With ``label=None`` the closest (lowest-score) instance trains —
        the paper's self-labelled mode; otherwise the given instance
        trains (the centroid-labelled mode of Algorithm 2's third part).
        Returns the index of the instance that was trained.
        """
        self._primed = None
        x = as_vector(x, name="x", n_features=self.n_features)
        if label is None:
            label = self.predict_one(x)
        elif not 0 <= label < self.n_labels:
            raise ConfigurationError(
                f"label {label} out of range [0, {self.n_labels})."
            )
        self.instances[label].partial_fit_one(x)
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "oselm.train", "sequential training steps", labels=("instance",)
            ).inc(instance=label)
        return int(label)

    # -- score priming (fleet batched scoring) ------------------------------------

    def prime_scores(
        self,
        labels: np.ndarray,
        scores: np.ndarray,
        *,
        base_index: int,
        index_fn: Callable[[], int],
    ) -> None:
        """Install precomputed ``(label, score)`` rows for upcoming samples.

        ``labels[k]``/``scores[k]`` must be exactly what
        :meth:`predict_with_score` would return for the sample the owner
        will present when ``index_fn()`` reads ``base_index + k`` (the
        fleet primes with the row-stable :meth:`score_batch_many` kernel,
        which is bit-identical to the scalar path). While the cache is
        installed, :meth:`predict_with_score` and
        :meth:`predict_with_score_batch` serve from it instead of
        touching the instances; any training call (:meth:`fit_initial`,
        :meth:`partial_fit_one`) or :meth:`set_state` invalidates it, and
        an ``index_fn`` reading outside the primed range falls through to
        the computed path. Correctness therefore never depends on the
        caller predicting *whether* the model will mutate mid-chunk —
        only on the primed values being right for the indices they cover.
        """
        labels = np.asarray(labels, dtype=np.int64)
        scores = np.asarray(scores, dtype=np.float64)
        if labels.shape != scores.shape or labels.ndim != 1:
            raise ConfigurationError(
                "primed labels/scores must be 1-D arrays of equal length."
            )
        self._primed = (labels, scores, int(base_index), index_fn)

    def clear_primed(self) -> None:
        """Drop any primed rows (idempotent)."""
        self._primed = None

    def _primed_offset(self, length: int) -> Optional[int]:
        """Offset into the primed rows covering ``length`` samples, or None."""
        primed = self._primed
        if primed is None:
            return None
        labels, scores, base, index_fn = primed
        off = index_fn() - base
        if 0 <= off and off + length <= len(scores):
            return off
        return None

    # -- inference ----------------------------------------------------------------

    def scores_one(self, x: np.ndarray) -> np.ndarray:
        """Anomaly score of each instance for one sample, shape ``(C,)``."""
        if not self.is_fitted:
            raise NotFittedError(self, "scores_one")
        x = as_vector(x, name="x", n_features=self.n_features)
        return np.array([inst.score_one(x) for inst in self.instances])

    def predict_one(self, x: np.ndarray) -> int:
        """Label of the instance with the smallest anomaly score."""
        return int(self.scores_one(x).argmin())

    def predict_with_score(self, x: np.ndarray) -> tuple[int, float]:
        """``(label, anomaly_score)`` — Algorithm 1 lines 6-7 in one pass."""
        if self._primed is not None:
            off = self._primed_offset(1)
            if off is not None:
                labels, scores = self._primed[0], self._primed[1]
                tel = self.telemetry
                if tel.enabled:
                    tel.registry.counter("oselm.predict", "label predictions").inc()
                return int(labels[off]), float(scores[off])
        scores = self.scores_one(x)
        c = int(scores.argmin())
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter("oselm.predict", "label predictions").inc()
        return c, float(scores[c])

    def scores(self, X: np.ndarray) -> np.ndarray:
        """Batch anomaly scores, shape ``(n, C)`` (vectorised)."""
        if not self.is_fitted:
            raise NotFittedError(self, "scores")
        X = as_matrix(X, name="X", n_features=self.n_features)
        return np.column_stack([inst.score(X) for inst in self.instances])

    def scores_rowwise(self, X: np.ndarray) -> np.ndarray:
        """Batch scores, shape ``(n, C)``, bit-identical per row to
        :meth:`scores_one`.

        Unlike :meth:`scores` (one big GEMM per instance, fastest but off
        by an ulp from the per-sample path), this uses the row-stable
        kernels so ``scores_rowwise(X)[i] == scores_one(X[i])`` exactly —
        the property the chunked streaming fast path is built on.
        """
        if not self.is_fitted:
            raise NotFittedError(self, "scores_rowwise")
        X = as_matrix(X, name="X", n_features=self.n_features)
        return np.column_stack([inst.score_rowwise(X) for inst in self.instances])

    def predict_with_score_batch(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised ``(labels, anomaly_scores)`` for a whole chunk.

        Equivalent to ``[predict_with_score(x) for x in X]`` — same argmin
        tie-breaking, same floats to the last bit — but computed with
        matrix ops instead of a per-sample Python loop. Returns
        ``(n,)`` int labels and ``(n,)`` float scores.
        """
        if self._primed is not None:
            n = len(np.asarray(X))
            off = self._primed_offset(n)
            if off is not None:
                labels, scores = self._primed[0], self._primed[1]
                tel = self.telemetry
                if tel.enabled:
                    tel.registry.counter("oselm.predict", "label predictions").inc(n)
                return labels[off : off + n], scores[off : off + n]
        S = self.scores_rowwise(X)
        labels = S.argmin(axis=1)
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter("oselm.predict", "label predictions").inc(len(S))
        return labels, S[np.arange(len(S)), labels]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Batch argmin-score labels, shape ``(n,)``."""
        return self.scores(X).argmin(axis=1)

    @staticmethod
    def score_batch_many(
        models: Sequence["MultiInstanceModel"],
        X: np.ndarray,
        owners: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One forward pass scoring rows owned by *different* models.

        ``X`` stacks pending rows from many devices; ``owners[i]`` is the
        index into ``models`` of the model that owns row ``i``. Every
        model must share the first model's random-layer weights (the
        fleet's :func:`~repro.fleet.batching.model_signature` guarantees
        this) so the hidden activation ``H`` is computed once, while the
        learned betas are stacked into a 3-D tensor and gathered per row.
        Per-row results are bit-identical to each owner's
        :meth:`predict_with_score_batch` — row ``i`` issues the same
        ``(1, h) @ (h, d)`` product against the same beta as the
        per-device path.

        Returns ``(labels, scores)`` of shape ``(n,)`` each.
        """
        if not models:
            raise ConfigurationError("score_batch_many needs at least one model.")
        first = models[0]
        X = as_matrix(X, name="X", n_features=first.n_features)
        owners = np.asarray(owners, dtype=np.intp)
        if owners.shape != (len(X),):
            raise ConfigurationError(
                f"owners must be shape ({len(X)},), got {owners.shape}."
            )
        for model in models:
            if not model.is_fitted:
                raise NotFittedError(model, "score_batch_many")
        S = np.empty((len(X), first.n_labels), dtype=np.float64)
        for c in range(first.n_labels):
            S[:, c] = OSELMAutoencoder.score_batch_many(
                [model.instances[c] for model in models], X, owners
            )
        labels = S.argmin(axis=1)
        # No oselm.predict increment here: the kernel *primes* scores; the
        # prediction is counted when a pipeline consumes the primed row, so
        # batched and sequential runs report identical counters.
        return labels, S[np.arange(len(S)), labels]

    def state_nbytes(self) -> int:
        """Total resident learned-state bytes across instances."""
        return sum(inst.state_nbytes() for inst in self.instances)

    # -- checkpoint protocol -----------------------------------------------------

    def get_state(self) -> dict:
        """Snapshot every instance's learned state."""
        return {"instances": [inst.get_state() for inst in self.instances]}

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot."""
        self._primed = None
        instances = state["instances"]
        if len(instances) != self.n_labels:
            raise ConfigurationError(
                f"state has {len(instances)} instances, model has {self.n_labels}."
            )
        for inst, inst_state in zip(self.instances, instances):
            inst.set_state(inst_state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "" if self.forgetting_factor is None else f", α={self.forgetting_factor}"
        return (
            f"MultiInstanceModel(C={self.n_labels}, "
            f"{self.n_features}-{self.n_hidden}-{self.n_features}{tag})"
        )
