"""OS-ELM autoencoder for unsupervised anomaly scoring (paper §3.1).

Each discriminative-model instance "forms an autoencoder for unsupervised
anomaly detection. That is, the numbers of input and output layer nodes
... are the same, and each instance is trained so that its output can
reconstruct a given input data with a smaller number of hidden nodes."
The anomaly score is the reconstruction error between input and output.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.rng import SeedLike
from ..utils.validation import as_matrix
from .forgetting import ForgettingOSELM
from .oselm import OSELM

__all__ = ["OSELMAutoencoder"]

ErrorMetric = Literal["mse", "mae"]


class OSELMAutoencoder:
    """Autoencoder built on an (optionally forgetting) OS-ELM core.

    Parameters
    ----------
    n_features:
        Input == output dimensionality.
    n_hidden:
        Bottleneck width (22 in both of the paper's configurations).
    error_metric:
        ``"mse"`` (default) or ``"mae"`` reconstruction error.
    forgetting_factor:
        ``None`` → plain OS-ELM; otherwise builds a
        :class:`~repro.oselm.forgetting.ForgettingOSELM` core (this is how
        ONLAD instances are constructed).
    """

    def __init__(
        self,
        n_features: int,
        n_hidden: int,
        *,
        error_metric: ErrorMetric = "mse",
        forgetting_factor: float | None = None,
        activation: str = "sigmoid",
        weight_scale: float = 1.0,
        reg: float = 1e-3,
        seed: SeedLike = None,
    ) -> None:
        if error_metric not in ("mse", "mae"):
            raise ConfigurationError(f"unknown error_metric {error_metric!r}.")
        core_cls = OSELM if forgetting_factor is None else ForgettingOSELM
        kwargs = dict(
            activation=activation, weight_scale=weight_scale, reg=reg, seed=seed
        )
        if forgetting_factor is not None:
            kwargs["forgetting_factor"] = forgetting_factor
        self.core = core_cls(n_features, n_hidden, n_features, **kwargs)
        self.n_features = int(n_features)
        self.n_hidden = int(n_hidden)
        self.error_metric: ErrorMetric = error_metric
        self.forgetting_factor = forgetting_factor

    @property
    def is_fitted(self) -> bool:
        return self.core.is_fitted

    @property
    def n_samples_seen(self) -> int:
        return self.core.n_samples_seen

    # -- training ---------------------------------------------------------------

    def fit_initial(self, X: np.ndarray) -> "OSELMAutoencoder":
        """Initial batch phase with reconstruction targets ``T = X``."""
        X = as_matrix(X, name="X", n_features=self.n_features)
        self.core.fit_initial(X, X)
        return self

    def partial_fit(self, X: np.ndarray) -> "OSELMAutoencoder":
        """Sequentially train on a chunk (targets are the inputs)."""
        X = as_matrix(X, name="X", n_features=self.n_features)
        self.core.partial_fit(X, X)
        return self

    def partial_fit_one(self, x: np.ndarray) -> "OSELMAutoencoder":
        """Single-sample sequential training step (the on-device path)."""
        x = np.asarray(x, dtype=np.float64).ravel()
        self.core.partial_fit_one(x, x)
        return self

    # -- scoring ---------------------------------------------------------------

    def reconstruct(self, X: np.ndarray) -> np.ndarray:
        """Autoencoder outputs for a batch."""
        return self.core.predict(X)

    def score(self, X: np.ndarray) -> np.ndarray:
        """Per-sample anomaly score (reconstruction error), shape ``(n,)``."""
        X = as_matrix(X, name="X", n_features=self.n_features)
        R = self.core.predict(X)
        if self.error_metric == "mse":
            return np.mean((R - X) ** 2, axis=1)
        return np.mean(np.abs(R - X), axis=1)

    def score_one(self, x: np.ndarray) -> float:
        """Anomaly score for one sample."""
        x = np.asarray(x, dtype=np.float64).ravel()
        r = self.core.predict_one(x)
        if self.error_metric == "mse":
            return float(np.mean((r - x) ** 2))
        return float(np.mean(np.abs(r - x)))

    def score_rowwise(self, X: np.ndarray) -> np.ndarray:
        """Batch anomaly scores, bit-identical per row to :meth:`score_one`.

        Built on :meth:`~repro.oselm.oselm.OSELM.predict_rowwise`; the
        per-row reduction (``np.mean`` along the feature axis) uses the
        same pairwise summation as the 1-D mean of ``score_one``.
        """
        X = as_matrix(X, name="X", n_features=self.n_features)
        R = self.core.predict_rowwise(X)
        if self.error_metric == "mse":
            return np.mean((R - X) ** 2, axis=1)
        return np.mean(np.abs(R - X), axis=1)

    @staticmethod
    def score_batch_many(
        instances: "list[OSELMAutoencoder]",
        X: np.ndarray,
        owners: np.ndarray,
    ) -> np.ndarray:
        """Anomaly scores for rows owned by different same-layer instances.

        All ``instances`` must share the first one's random-layer weights
        and ``error_metric``; ``owners[i]`` selects which instance's beta
        scores row ``i``. The hidden activations are computed once with
        the row-stable :meth:`~repro.oselm.random_layer.RandomLayer.transform_rowwise`
        kernel and the betas are stacked ``(G, h, d)`` and gathered per
        row, so ``np.matmul`` runs one ``(1, h) @ (h, d)`` product per
        row — the same product, on the same operands, as the owner's
        :meth:`score_rowwise`. Returns shape ``(n,)``.
        """
        ref = instances[0]
        H = ref.core.layer.transform_rowwise(X)
        betas = np.stack([inst.core.beta for inst in instances])
        R = np.matmul(H[:, None, :], betas[owners])[:, 0, :]
        if ref.error_metric == "mse":
            return np.mean((R - X) ** 2, axis=1)
        return np.mean(np.abs(R - X), axis=1)

    def state_nbytes(self) -> int:
        """Resident learned-state bytes (delegates to the core)."""
        return self.core.state_nbytes()

    def get_state(self) -> dict:
        """Snapshot the wrapped OS-ELM core."""
        return {"core": self.core.get_state()}

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot."""
        self.core.set_state(state["core"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "" if self.forgetting_factor is None else f", α={self.forgetting_factor}"
        return f"OSELMAutoencoder({self.n_features}-{self.n_hidden}-{self.n_features}{tag})"
