"""Random-projection hidden layer for (OS-)ELM networks.

Extreme Learning Machines fix the input-to-hidden weights at random and only
learn the hidden-to-output weights analytically. This module owns that fixed
random layer: weight/bias initialisation and the nonlinear feature map
``H = g(X·α + b)``.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.math import sigmoid
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import as_matrix, check_positive

__all__ = ["ACTIVATIONS", "RandomLayer"]

ACTIVATIONS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "sigmoid": sigmoid,
    "tanh": np.tanh,
    "relu": lambda x: np.maximum(x, 0.0),
    "linear": lambda x: np.asarray(x, dtype=np.float64),
}


class RandomLayer:
    """Fixed random hidden layer ``x ↦ g(x·α + b)``.

    Parameters
    ----------
    n_inputs, n_hidden:
        Input dimensionality and hidden width. The paper uses 38→22 for
        NSL-KDD and 511→22 for the cooling-fan dataset.
    activation:
        One of ``"sigmoid"`` (paper default), ``"tanh"``, ``"relu"``,
        ``"linear"``.
    weight_scale:
        Weights/biases are drawn uniform in ``[-weight_scale, weight_scale]``.
    seed:
        RNG seed; the layer is immutable after construction.
    """

    def __init__(
        self,
        n_inputs: int,
        n_hidden: int,
        *,
        activation: str = "sigmoid",
        weight_scale: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        check_positive(n_inputs, "n_inputs")
        check_positive(n_hidden, "n_hidden")
        check_positive(weight_scale, "weight_scale")
        if activation not in ACTIVATIONS:
            raise ConfigurationError(
                f"unknown activation {activation!r}; choose from {sorted(ACTIVATIONS)}."
            )
        self.n_inputs = int(n_inputs)
        self.n_hidden = int(n_hidden)
        self.activation = activation
        self.weight_scale = float(weight_scale)
        rng = ensure_rng(seed)
        self.weights = rng.uniform(
            -weight_scale, weight_scale, size=(self.n_inputs, self.n_hidden)
        )
        self.biases = rng.uniform(-weight_scale, weight_scale, size=self.n_hidden)
        self.weights.setflags(write=False)
        self.biases.setflags(write=False)
        self._g = ACTIVATIONS[activation]

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map ``(n, n_inputs)`` inputs to ``(n, n_hidden)`` features."""
        X = as_matrix(X, name="X", n_features=self.n_inputs)
        return self._g(X @ self.weights + self.biases)

    def transform_one(self, x: np.ndarray) -> np.ndarray:
        """Feature row vector ``(1, n_hidden)`` for a single sample.

        Validates finiteness: a NaN reaching the sequential RLS update
        would corrupt the model state irreversibly.
        """
        from ..utils.validation import as_vector

        x = as_vector(x, name="x", n_features=self.n_inputs).reshape(1, -1)
        return self._g(x @ self.weights + self.biases)

    def transform_rowwise(self, X: np.ndarray) -> np.ndarray:
        """Batch feature map, bit-identical per row to :meth:`transform_one`.

        ``transform`` multiplies the whole ``(n, n_inputs)`` block in one
        GEMM, whose blocked summation order differs from the single-row
        GEMM of ``transform_one`` by up to an ulp. This variant instead
        stacks the rows as ``(n, 1, n_inputs)`` so :func:`numpy.matmul`
        issues the *same* single-row product per sample at C speed — the
        streaming fast path relies on this for byte-identical records.
        """
        X = as_matrix(X, name="X", n_features=self.n_inputs)
        H = self._g(np.matmul(X[:, None, :], self.weights) + self.biases)
        return H[:, 0, :]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RandomLayer(n_inputs={self.n_inputs}, n_hidden={self.n_hidden}, "
            f"activation={self.activation!r})"
        )
