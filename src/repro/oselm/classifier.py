"""OS-ELM classifier — supervised one-hot-target variant.

The paper's discriminative model is the unsupervised autoencoder ensemble,
but OS-ELM's original formulation (Liang et al. 2006) is a supervised
classifier: targets are one-hot label encodings and prediction is the
argmax output. This module provides that variant — it is the natural
companion for the supervised error-rate pipelines (DDM / ADWIN / EDDM /
KSWIN) and for downstream users who do have labels on-device.
"""

from __future__ import annotations

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.rng import SeedLike
from ..utils.validation import as_matrix, as_vector, check_labels, check_positive
from .forgetting import ForgettingOSELM
from .oselm import OSELM

__all__ = ["OSELMClassifier"]


class OSELMClassifier:
    """Sequentially-trainable multi-class classifier on an OS-ELM core.

    Parameters
    ----------
    n_features, n_hidden, n_classes:
        Input dimensionality, hidden width, number of classes.
    forgetting_factor:
        ``None`` → plain OS-ELM; a float in (0, 1] → forgetting core that
        tracks non-stationary class boundaries.
    """

    def __init__(
        self,
        n_features: int,
        n_hidden: int,
        n_classes: int,
        *,
        forgetting_factor: float | None = None,
        activation: str = "sigmoid",
        weight_scale: float = 1.0,
        reg: float = 1e-3,
        seed: SeedLike = None,
    ) -> None:
        check_positive(n_classes, "n_classes")
        if n_classes < 2:
            raise ConfigurationError("n_classes must be >= 2.")
        core_cls = OSELM if forgetting_factor is None else ForgettingOSELM
        kwargs = dict(activation=activation, weight_scale=weight_scale, reg=reg, seed=seed)
        if forgetting_factor is not None:
            kwargs["forgetting_factor"] = forgetting_factor
        self.core = core_cls(n_features, n_hidden, n_classes, **kwargs)
        self.n_features = int(n_features)
        self.n_hidden = int(n_hidden)
        self.n_classes = int(n_classes)
        self.forgetting_factor = forgetting_factor

    @property
    def is_fitted(self) -> bool:
        return self.core.is_fitted

    def _one_hot(self, y: np.ndarray) -> np.ndarray:
        Y = np.full((len(y), self.n_classes), -1.0)
        Y[np.arange(len(y)), y] = 1.0
        return Y

    # -- training ---------------------------------------------------------------

    def fit_initial(self, X: np.ndarray, y: np.ndarray) -> "OSELMClassifier":
        """Batch initial phase on labelled data."""
        X = as_matrix(X, name="X", n_features=self.n_features)
        y = check_labels(y, n_classes=self.n_classes, name="y")
        if len(X) != len(y):
            raise ConfigurationError(
                f"X has {len(X)} samples but y has {len(y)} labels."
            )
        self.core.fit_initial(X, self._one_hot(y))
        return self

    def partial_fit(self, X: np.ndarray, y: np.ndarray) -> "OSELMClassifier":
        """Sequential update on a labelled chunk."""
        X = as_matrix(X, name="X", n_features=self.n_features)
        y = check_labels(y, n_classes=self.n_classes, name="y")
        self.core.partial_fit(X, self._one_hot(y))
        return self

    def partial_fit_one(self, x: np.ndarray, label: int) -> "OSELMClassifier":
        """Single-sample sequential update (the on-device path)."""
        x = as_vector(x, name="x", n_features=self.n_features)
        if not 0 <= label < self.n_classes:
            raise ConfigurationError(
                f"label {label} out of range [0, {self.n_classes})."
            )
        t = np.full(self.n_classes, -1.0)
        t[label] = 1.0
        self.core.partial_fit_one(x, t)
        return self

    # -- inference ----------------------------------------------------------------

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw per-class scores, shape ``(n, n_classes)``."""
        return self.core.predict(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Argmax-score class labels."""
        return self.decision_function(X).argmax(axis=1)

    def predict_one(self, x: np.ndarray) -> int:
        """Label for one sample."""
        return int(self.core.predict_one(x).argmax())

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on labelled data."""
        y = check_labels(y, n_classes=self.n_classes, name="y")
        return float((self.predict(X) == y).mean())

    def state_nbytes(self) -> int:
        """Resident learned-state bytes (delegates to the core)."""
        return self.core.state_nbytes()
