"""OS-ELM — Online Sequential Extreme Learning Machine (Liang et al. 2006).

A 3-layer network whose hidden layer is a fixed :class:`RandomLayer` and
whose output weights ``β`` are learned by recursive least squares:

* **initial phase** (batch): ``P₀ = (H₀ᵀH₀ + λI)⁻¹``, ``β₀ = P₀ H₀ᵀ T₀``;
* **sequential phase** (chunk of ``m`` rows): with ``H`` the chunk's hidden
  features and ``T`` its targets,

  .. math::

     P \\leftarrow P - P H^\\top (I_m + H P H^\\top)^{-1} H P, \\qquad
     \\beta \\leftarrow \\beta + P H^\\top (T - H \\beta).

* **rank-1 fast path** (``m = 1``, the paper's on-device mode): the inner
  inverse degenerates to a scalar, so *no matrix inversion is ever needed*
  ("the training batch size is fixed to one so that pseudo inverse
  operation of matrixes can be eliminated", §2.2.1):

  .. math::

     k = \\frac{P h^\\top}{1 + h P h^\\top}, \\qquad
     \\beta \\leftarrow \\beta + k\\,(t - h\\beta), \\qquad
     P \\leftarrow P - k\\,(h P).

The sequential updates are algebraically identical to re-solving ridge
regression on all data seen so far — the equivalence the property-based
tests verify.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..utils.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
    NumericalHealthError,
)
from ..utils.rng import SeedLike
from ..utils.validation import as_matrix, check_positive
from .random_layer import RandomLayer

__all__ = ["OSELM"]


class OSELM:
    """Online-sequential ELM regressor / multi-output network.

    Parameters
    ----------
    n_inputs, n_hidden, n_outputs:
        Layer sizes. For the paper's autoencoders ``n_outputs == n_inputs``.
    activation, weight_scale, seed:
        Forwarded to :class:`RandomLayer`.
    reg:
        Ridge regularisation ``λ`` of the initial phase. Also allows an
        initial batch smaller than ``n_hidden`` (the P matrix stays PD).

    Attributes
    ----------
    beta:
        ``(n_hidden, n_outputs)`` learned output weights.
    P:
        ``(n_hidden, n_hidden)`` inverse-covariance state of the RLS
        recursion.
    n_samples_seen:
        Total training rows folded in so far.
    """

    def __init__(
        self,
        n_inputs: int,
        n_hidden: int,
        n_outputs: int,
        *,
        activation: str = "sigmoid",
        weight_scale: float = 1.0,
        reg: float = 1e-3,
        seed: SeedLike = None,
    ) -> None:
        check_positive(n_outputs, "n_outputs")
        check_positive(reg, "reg")
        self.layer = RandomLayer(
            n_inputs,
            n_hidden,
            activation=activation,
            weight_scale=weight_scale,
            seed=seed,
        )
        self.n_inputs = self.layer.n_inputs
        self.n_hidden = self.layer.n_hidden
        self.n_outputs = int(n_outputs)
        self.reg = float(reg)
        self.beta: Optional[np.ndarray] = None
        self.P: Optional[np.ndarray] = None
        self.n_samples_seen: int = 0

    @property
    def is_fitted(self) -> bool:
        return self.beta is not None

    # -- initial (batch) phase --------------------------------------------------

    def fit_initial(self, X: np.ndarray, T: np.ndarray) -> "OSELM":
        """Run the OS-ELM initial phase on the batch ``(X, T)``.

        Resets any previous state. ``T`` must be ``(n, n_outputs)`` (a 1-D
        target is accepted for ``n_outputs == 1``).
        """
        X = as_matrix(X, name="X", n_features=self.n_inputs)
        T = self._as_targets(T, len(X))
        H = self.layer.transform(X)
        A = H.T @ H
        A.flat[:: self.n_hidden + 1] += self.reg
        self.P = np.linalg.inv(A)
        self.beta = self.P @ (H.T @ T)
        self.n_samples_seen = len(X)
        return self

    # -- sequential phase ---------------------------------------------------------

    def partial_fit(self, X: np.ndarray, T: np.ndarray) -> "OSELM":
        """Fold a chunk of training rows into ``(P, β)``.

        Dispatches to the rank-1 fast path for single rows (the on-device
        mode); larger chunks use the ``m×m`` inner inverse.
        """
        if not self.is_fitted:
            raise NotFittedError(self, "partial_fit")
        X = as_matrix(X, name="X", n_features=self.n_inputs)
        T = self._as_targets(T, len(X))
        if len(X) == 1:
            self._rank1_update(self.layer.transform(X), T)
        else:
            H = self.layer.transform(X)
            PHt = self.P @ H.T
            M = H @ PHt
            M.flat[:: len(X) + 1] += 1.0
            K = PHt @ np.linalg.inv(M)
            self.beta += K @ (T - H @ self.beta)
            self.P -= K @ PHt.T
            self._symmetrize()
        self.n_samples_seen += len(X)
        return self

    def partial_fit_one(self, x: np.ndarray, t: np.ndarray) -> "OSELM":
        """Single-sample sequential update (no inversion, O(h²) work)."""
        if not self.is_fitted:
            raise NotFittedError(self, "partial_fit_one")
        h = self.layer.transform_one(x)
        t = np.asarray(t, dtype=np.float64).reshape(1, -1)
        if t.shape[1] != self.n_outputs:
            raise ConfigurationError(
                f"target has {t.shape[1]} outputs, model expects {self.n_outputs}."
            )
        if not np.all(np.isfinite(t)):
            raise DataValidationError("target contains NaN or infinite values.")
        self._rank1_update(h, t)
        self.n_samples_seen += 1
        return self

    def _rank1_update(self, h: np.ndarray, t: np.ndarray) -> None:
        """RLS rank-1 step with h a (1, n_hidden) row, t a (1, n_outputs) row."""
        Ph = self.P @ h[0]                     # (n_hidden,)
        denom = 1.0 + float(h[0] @ Ph)
        k = Ph / denom                          # gain vector
        err = t[0] - h[0] @ self.beta           # (n_outputs,)
        self.beta += np.outer(k, err)
        # P ← P − k (h P); h P == Ph because P is symmetric.
        self.P -= np.outer(k, Ph)
        self._symmetrize()

    def _symmetrize(self) -> None:
        # RLS recursions slowly lose symmetry in floating point; re-impose it
        # so long streams (22 701 samples in the NSL-KDD run) stay stable.
        self.P += self.P.T
        self.P *= 0.5

    # -- inference -------------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Network outputs ``H β`` for a batch, shape ``(n, n_outputs)``."""
        if not self.is_fitted:
            raise NotFittedError(self, "predict")
        X = as_matrix(X, name="X", n_features=self.n_inputs)
        return self.layer.transform(X) @ self.beta

    def predict_one(self, x: np.ndarray) -> np.ndarray:
        """Network output vector for one sample, shape ``(n_outputs,)``."""
        if not self.is_fitted:
            raise NotFittedError(self, "predict_one")
        return (self.layer.transform_one(x) @ self.beta)[0]

    def predict_rowwise(self, X: np.ndarray) -> np.ndarray:
        """Batch outputs, bit-identical per row to :meth:`predict_one`.

        Uses the stacked single-row products of
        :meth:`~repro.oselm.random_layer.RandomLayer.transform_rowwise` for
        both layers, so chunked streaming reproduces the per-sample path
        exactly (see the pipeline fast path).
        """
        if not self.is_fitted:
            raise NotFittedError(self, "predict_rowwise")
        H = self.layer.transform_rowwise(X)
        return np.matmul(H[:, None, :], self.beta)[:, 0, :]

    # -- numeric health ----------------------------------------------------------------

    def numeric_health(self) -> dict:
        """Cheap (O(h²)) indicators of the RLS recursion's numeric state.

        Returns a dict the guard layer's sentinels threshold against:

        * ``finite`` — no NaN/inf anywhere in ``β`` or ``P``;
        * ``beta_norm`` — Frobenius norm of ``β`` (explodes when a huge
          target is folded in, e.g. a sensor spike hitting an autoencoder);
        * ``p_max`` — largest ``|P|`` entry (a condition proxy: ``P`` is
          the inverse covariance, so a blow-up means the recursion lost
          positive definiteness);
        * ``p_asymmetry`` — ``max|P - Pᵀ|`` (kept ≈0 by ``_symmetrize``;
          growth signals external corruption);
        * ``p_diag_min`` — smallest diagonal entry (must stay > 0 for a
          PD matrix).

        An unfitted model reports ``{"fitted": False}``.
        """
        if not self.is_fitted:
            return {"fitted": False}
        beta, P = self.beta, self.P
        with np.errstate(over="ignore", invalid="ignore"):
            return {
                "fitted": True,
                "finite": bool(np.isfinite(beta).all() and np.isfinite(P).all()),
                "beta_norm": float(np.sqrt(np.sum(beta * beta))),
                "p_max": float(np.abs(P).max()),
                "p_asymmetry": float(np.abs(P - P.T).max()),
                "p_diag_min": float(np.diagonal(P).min()),
            }

    def check_health(
        self,
        *,
        max_beta_norm: float = 1e6,
        max_p_magnitude: float = 1e8,
        symmetry_tol: float = 1e-6,
    ) -> None:
        """Raise :class:`NumericalHealthError` if the state has diverged.

        The thresholds mirror :class:`repro.guard.NumericHealthSentinel`'s
        defaults; an unfitted model trivially passes.
        """
        h = self.numeric_health()
        if not h.get("fitted"):
            return
        violations = []
        if not h["finite"]:
            violations.append("non-finite values in beta/P")
        if h["beta_norm"] > max_beta_norm:
            violations.append(f"||beta||={h['beta_norm']:.3g} exceeds {max_beta_norm:g}")
        if h["p_max"] > max_p_magnitude:
            violations.append(f"max|P|={h['p_max']:.3g} exceeds {max_p_magnitude:g}")
        if h["p_asymmetry"] > symmetry_tol:
            violations.append(f"P asymmetry {h['p_asymmetry']:.3g} exceeds {symmetry_tol:g}")
        if h["p_diag_min"] <= 0.0:
            violations.append(f"P diagonal min {h['p_diag_min']:.3g} is not positive")
        if violations:
            raise NumericalHealthError(
                f"{type(self).__name__} numeric state diverged: " + "; ".join(violations)
            )

    # -- helpers ----------------------------------------------------------------------

    def _as_targets(self, T: np.ndarray, n: int) -> np.ndarray:
        T = np.asarray(T, dtype=np.float64)
        if T.ndim == 1:
            T = T.reshape(-1, 1) if self.n_outputs == 1 else T.reshape(1, -1)
        if T.shape != (n, self.n_outputs):
            raise ConfigurationError(
                f"targets have shape {T.shape}, expected ({n}, {self.n_outputs})."
            )
        if not np.all(np.isfinite(T)):
            raise DataValidationError("targets contain NaN or infinite values.")
        return T

    def state_nbytes(self) -> int:
        """Resident memory of the learned state (β and P), in bytes.

        Random-layer weights are counted separately by the device memory
        model since they could live in flash on a microcontroller.
        """
        if not self.is_fitted:
            return 0
        return int(self.beta.nbytes + self.P.nbytes)

    # -- checkpoint protocol -----------------------------------------------------------

    def get_state(self) -> dict:
        """Snapshot the learned state plus the frozen random layer.

        The layer weights are included so a restore is self-contained
        even if the receiving model was built from a different seed.
        """
        return {
            "weights": self.layer.weights.copy(),
            "biases": self.layer.biases.copy(),
            "beta": None if self.beta is None else self.beta.copy(),
            "P": None if self.P is None else self.P.copy(),
            "n_samples_seen": int(self.n_samples_seen),
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot."""
        weights = np.asarray(state["weights"], dtype=np.float64)
        biases = np.asarray(state["biases"], dtype=np.float64)
        if weights.shape != self.layer.weights.shape or biases.shape != self.layer.biases.shape:
            raise ConfigurationError(
                f"layer state shapes {weights.shape}/{biases.shape} do not match "
                f"this OSELM ({self.layer.weights.shape}/{self.layer.biases.shape})."
            )
        self.layer.weights = weights.copy()
        self.layer.weights.setflags(write=False)
        self.layer.biases = biases.copy()
        self.layer.biases.setflags(write=False)
        beta, P = state["beta"], state["P"]
        if (beta is None) != (P is None):
            raise ConfigurationError("beta and P must both be present or both None.")
        self.beta = None if beta is None else np.asarray(beta, dtype=np.float64).copy()
        self.P = None if P is None else np.asarray(P, dtype=np.float64).copy()
        self.n_samples_seen = int(state["n_samples_seen"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OSELM({self.n_inputs}-{self.n_hidden}-{self.n_outputs}, "
            f"activation={self.layer.activation!r}, seen={self.n_samples_seen})"
        )
