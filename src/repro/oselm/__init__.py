"""On-device learnable neural substrate: OS-ELM, forgetting, autoencoders."""

from .autoencoder import OSELMAutoencoder
from .classifier import OSELMClassifier
from .ensemble import MultiInstanceModel
from .forgetting import ForgettingOSELM
from .oselm import OSELM
from .random_layer import ACTIVATIONS, RandomLayer

__all__ = [
    "RandomLayer",
    "ACTIVATIONS",
    "OSELM",
    "ForgettingOSELM",
    "OSELMAutoencoder",
    "OSELMClassifier",
    "MultiInstanceModel",
]
