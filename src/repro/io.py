"""Persistence — save/restore trained pipelines for deployment.

An on-device workflow trains the discriminative model and calibrates the
detector on a gateway, then ships the state to the edge device. This
module serialises the proposed pipeline's full state — OS-ELM instances
(random layers, β, P), centroid matrices, thresholds, window/counter
state, reconstruction budgets — to a single compressed ``.npz`` archive
and restores a behaviourally identical pipeline from it.

Only documented public state is stored (no pickling of code objects), so
archives are portable across library versions that keep the same fields.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .core.coords import CentroidSet
from .core.detector import SequentialDriftDetector
from .core.pipeline import ProposedPipeline
from .core.reconstruction import ModelReconstructor
from .oselm.ensemble import MultiInstanceModel
from .utils.exceptions import ConfigurationError, DataValidationError

__all__ = ["save_pipeline", "load_pipeline"]

_FORMAT_VERSION = 1

PathLike = Union[str, Path]


def _model_arrays(model: MultiInstanceModel) -> dict[str, np.ndarray]:
    arrays: dict[str, np.ndarray] = {}
    for i, inst in enumerate(model.instances):
        core = inst.core
        arrays[f"inst{i}_alpha"] = np.asarray(core.layer.weights)
        arrays[f"inst{i}_bias"] = np.asarray(core.layer.biases)
        arrays[f"inst{i}_beta"] = core.beta
        arrays[f"inst{i}_P"] = core.P
        arrays[f"inst{i}_seen"] = np.array([core.n_samples_seen])
    return arrays


def save_pipeline(pipeline: ProposedPipeline, path: PathLike) -> Path:
    """Serialise a fitted :class:`ProposedPipeline` to ``path`` (.npz).

    Returns the written path. Raises when the model is not fitted (there
    would be nothing meaningful to deploy).
    """
    if not isinstance(pipeline, ProposedPipeline):
        raise ConfigurationError("save_pipeline expects a ProposedPipeline.")
    model = pipeline.model
    if not model.is_fitted:
        raise ConfigurationError("cannot save an unfitted pipeline.")
    det = pipeline.detector
    rec = pipeline.reconstructor
    cents = det.centroids

    meta = {
        "format_version": _FORMAT_VERSION,
        "n_features": model.n_features,
        "n_hidden": model.n_hidden,
        "n_labels": model.n_labels,
        "activation": model.instances[0].core.layer.activation,
        "weight_scale": model.instances[0].core.layer.weight_scale,
        "reg": model.instances[0].core.reg,
        "error_metric": model.instances[0].error_metric,
        "forgetting_factor": model.forgetting_factor,
        "window_size": det.window_size,
        "theta_error": det.theta_error,
        "theta_drift": det.theta_drift,
        "max_count": cents.max_count,
        "n_total": rec.n_total,
        "n_search": rec.n_search,
        "n_update": rec.n_update,
        "reset_covariance": rec.reset_covariance,
        "literal_overlap": rec.literal_overlap,
    }
    arrays = {
        "trained_centroids": cents.trained,
        "recent_centroids": cents.recent,
        "counts": cents.counts,
        "trained_counts": cents._trained_counts,
        "meta_json": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        **_model_arrays(model),
    }
    path = Path(path)
    np.savez_compressed(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_pipeline(path: PathLike) -> ProposedPipeline:
    """Restore a :class:`ProposedPipeline` saved by :func:`save_pipeline`.

    The restored pipeline predicts and detects identically to the saved
    one (same random layers, weights, thresholds, centroid state).
    """
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta_json"]).decode())
        if meta.get("format_version") != _FORMAT_VERSION:
            raise DataValidationError(
                f"unsupported archive format {meta.get('format_version')!r}."
            )
        C = int(meta["n_labels"])
        model = MultiInstanceModel(
            int(meta["n_features"]),
            int(meta["n_hidden"]),
            C,
            forgetting_factor=meta["forgetting_factor"],
            error_metric=meta["error_metric"],
            activation=meta["activation"],
            weight_scale=float(meta["weight_scale"]),
            reg=float(meta["reg"]),
            seed=0,
        )
        for i, inst in enumerate(model.instances):
            core = inst.core
            # Overwrite the fresh random layer with the stored one.
            weights = data[f"inst{i}_alpha"]
            biases = data[f"inst{i}_bias"]
            core.layer.weights = weights.copy()
            core.layer.biases = biases.copy()
            core.layer.weights.setflags(write=False)
            core.layer.biases.setflags(write=False)
            core.beta = data[f"inst{i}_beta"].copy()
            core.P = data[f"inst{i}_P"].copy()
            core.n_samples_seen = int(data[f"inst{i}_seen"][0])

        cents = CentroidSet(
            data["trained_centroids"],
            data["trained_counts"],
            max_count=meta["max_count"],
        )
        cents.recent = data["recent_centroids"].copy()
        cents.counts = data["counts"].copy()

    detector = SequentialDriftDetector(
        cents,
        window_size=int(meta["window_size"]),
        theta_error=float(meta["theta_error"]),
        theta_drift=float(meta["theta_drift"]),
    )
    reconstructor = ModelReconstructor(
        model,
        cents,
        n_total=int(meta["n_total"]),
        n_search=int(meta["n_search"]),
        n_update=int(meta["n_update"]),
        reset_covariance=bool(meta["reset_covariance"]),
        literal_overlap=bool(meta["literal_overlap"]),
    )
    return ProposedPipeline(model, detector, reconstructor)
