"""Persistence — save/restore trained pipelines for deployment.

An on-device workflow trains the discriminative model and calibrates the
detector on a gateway, then ships the state to the edge device. This
module serialises the proposed pipeline's full state — OS-ELM instances
(random layers, β, P), centroid matrices, thresholds, window/counter
state, reconstruction budgets — and restores a behaviourally identical
pipeline from it.

Archives use the :mod:`repro.resilience` checkpoint container: writes are
atomic (temp file + fsync + rename — a crash mid-save can no longer leave
a torn archive at the target path), the payload is checksummed (a
truncated or bit-flipped file raises
:class:`~repro.utils.exceptions.CheckpointCorruptError` instead of
loading half-initialized state), and the format is versioned. Only
documented public state is stored (no pickling of code objects).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from .core.coords import CentroidSet
from .core.detector import SequentialDriftDetector
from .core.pipeline import ProposedPipeline
from .core.reconstruction import ModelReconstructor
from .oselm.ensemble import MultiInstanceModel
from .resilience.checkpoint import load_checkpoint, save_checkpoint
from .utils.exceptions import ConfigurationError

__all__ = ["save_pipeline", "load_pipeline"]

#: Checkpoint ``kind`` tag for deployable proposed-pipeline archives.
PIPELINE_KIND = "proposed-pipeline"

PathLike = Union[str, Path]


def _archive_path(path: PathLike) -> Path:
    path = Path(path)
    # Historical behaviour (inherited from np.savez): a path without the
    # .npz suffix gets it appended, so callers can pass either form.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def save_pipeline(pipeline: ProposedPipeline, path: PathLike) -> Path:
    """Serialise a fitted :class:`ProposedPipeline` to ``path`` (.npz).

    The write is atomic: the archive appears at ``path`` complete and
    checksummed, or not at all. Returns the written path. Raises when the
    model is not fitted (there would be nothing meaningful to deploy).
    """
    if not isinstance(pipeline, ProposedPipeline):
        raise ConfigurationError("save_pipeline expects a ProposedPipeline.")
    model = pipeline.model
    if not model.is_fitted:
        raise ConfigurationError("cannot save an unfitted pipeline.")
    det = pipeline.detector
    rec = pipeline.reconstructor
    cents = det.centroids

    config = {
        "n_features": model.n_features,
        "n_hidden": model.n_hidden,
        "n_labels": model.n_labels,
        "activation": model.instances[0].core.layer.activation,
        "weight_scale": model.instances[0].core.layer.weight_scale,
        "reg": model.instances[0].core.reg,
        "error_metric": model.instances[0].error_metric,
        "forgetting_factor": model.forgetting_factor,
        "window_size": det.window_size,
        "theta_error": det.theta_error,
        "theta_drift": det.theta_drift,
        "max_count": cents.max_count,
        "n_total": rec.n_total,
        "n_search": rec.n_search,
        "n_update": rec.n_update,
        "reset_covariance": rec.reset_covariance,
        "literal_overlap": rec.literal_overlap,
    }
    path = _archive_path(path)
    return save_checkpoint(
        path,
        {"config": config, "pipeline": pipeline.get_state()},
        kind=PIPELINE_KIND,
    )


def load_pipeline(path: PathLike) -> ProposedPipeline:
    """Restore a :class:`ProposedPipeline` saved by :func:`save_pipeline`.

    The restored pipeline predicts and detects identically to the saved
    one (same random layers, weights, thresholds, centroid state). A
    corrupted archive raises
    :class:`~repro.utils.exceptions.CheckpointCorruptError` before any
    object is built.
    """
    ckpt = load_checkpoint(Path(path), expected_kind=PIPELINE_KIND)
    cfg = ckpt.state["config"]
    pipe_state = ckpt.state["pipeline"]

    model = MultiInstanceModel(
        int(cfg["n_features"]),
        int(cfg["n_hidden"]),
        int(cfg["n_labels"]),
        forgetting_factor=cfg["forgetting_factor"],
        error_metric=cfg["error_metric"],
        activation=cfg["activation"],
        weight_scale=float(cfg["weight_scale"]),
        reg=float(cfg["reg"]),
        seed=0,  # placeholder layers; set_state overwrites them below
    )
    cent_state = pipe_state["extra"]["detector"]["centroids"]
    cents = CentroidSet(
        cent_state["trained"],
        cent_state["trained_counts"],
        max_count=cfg["max_count"],
    )
    detector = SequentialDriftDetector(
        cents,
        window_size=int(cfg["window_size"]),
        theta_error=float(cfg["theta_error"]),
        theta_drift=float(cfg["theta_drift"]),
    )
    reconstructor = ModelReconstructor(
        model,
        cents,
        n_total=int(cfg["n_total"]),
        n_search=int(cfg["n_search"]),
        n_update=int(cfg["n_update"]),
        reset_covariance=bool(cfg["reset_covariance"]),
        literal_overlap=bool(cfg["literal_overlap"]),
    )
    pipe = ProposedPipeline(model, detector, reconstructor)
    pipe.set_state(pipe_state)
    return pipe
