"""repro — reproduction of Yamada & Matsutani (2023): *A Lightweight
Concept Drift Detection Method for On-Device Learning on Resource-Limited
Edge Devices*.

The package is layered (see DESIGN.md):

* :mod:`repro.core` — the proposed sequential detector (Algorithms 1-4),
  model reconstruction, and the five evaluated pipelines;
* :mod:`repro.oselm` — OS-ELM / forgetting-OS-ELM autoencoder substrate;
* :mod:`repro.detectors` — Quant Tree, SPLL, DDM, ADWIN, Page-Hinkley;
* :mod:`repro.clustering` — k-means / sequential k-means / GMM;
* :mod:`repro.datasets` — drift streams and the two (synthesised) paper
  datasets;
* :mod:`repro.device` — Raspberry Pi 4 / Pico memory & latency models;
* :mod:`repro.metrics` — prequential accuracy, delay, experiment runner;
* :mod:`repro.guard` — self-healing runtime: input sanitation,
  numeric-health sentinels, and a degradation ladder;
* :mod:`repro.resilience` — crash-safe checkpointing and fault injection;
* :mod:`repro.engine` — composable streaming engine (interceptor stack)
  plus the declarative registries and :class:`~repro.engine.ExperimentSpec`.

Quickstart::

    from repro.datasets import make_nslkdd_like
    from repro.core import build_proposed
    from repro.metrics import evaluate_method

    train, test = make_nslkdd_like(seed=0)
    pipeline = build_proposed(train.X, train.y, window_size=100, seed=1)
    result = evaluate_method(pipeline, test)
    print(result.accuracy, result.first_delay)
"""

from . import (
    clustering,
    core,
    datasets,
    detectors,
    device,
    engine,
    guard,
    metrics,
    oselm,
    resilience,
    telemetry,
    utils,
)
from .core import (
    CentroidSet,
    ModelReconstructor,
    MultiWindowDetector,
    ProposedPipeline,
    SequentialDriftDetector,
    build_baseline,
    build_model,
    build_onlad,
    build_proposed,
    build_quanttree_pipeline,
    build_spll_pipeline,
)
from .datasets import DataStream, make_cooling_fan_like, make_nslkdd_like
from .detectors import ADWIN, DDM, SPLL, NoDetection, PageHinkley, QuantTree
from .engine import (
    ExperimentSpec,
    build_experiment,
    register_dataset,
    register_detector,
    register_pipeline,
)
from .guard import GuardLevel, InputSanitizer, NumericHealthSentinel, RuntimeGuard
from .device import RASPBERRY_PI_4, RASPBERRY_PI_PICO, DeviceProfile
from .metrics import MethodResult, compare_methods, evaluate_method
from .oselm import OSELM, ForgettingOSELM, MultiInstanceModel, OSELMAutoencoder
from .resilience import Checkpoint, load_checkpoint, save_checkpoint
from .telemetry import Telemetry, get_telemetry
from .telemetry import configure as configure_telemetry

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "utils",
    "datasets",
    "clustering",
    "oselm",
    "detectors",
    "core",
    "device",
    "engine",
    "guard",
    "metrics",
    "resilience",
    "telemetry",
    "ExperimentSpec",
    "build_experiment",
    "register_pipeline",
    "register_dataset",
    "register_detector",
    "RuntimeGuard",
    "InputSanitizer",
    "NumericHealthSentinel",
    "GuardLevel",
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "Telemetry",
    "get_telemetry",
    "configure_telemetry",
    "CentroidSet",
    "SequentialDriftDetector",
    "ModelReconstructor",
    "MultiWindowDetector",
    "ProposedPipeline",
    "build_model",
    "build_proposed",
    "build_baseline",
    "build_onlad",
    "build_quanttree_pipeline",
    "build_spll_pipeline",
    "DataStream",
    "make_nslkdd_like",
    "make_cooling_fan_like",
    "QuantTree",
    "SPLL",
    "DDM",
    "ADWIN",
    "PageHinkley",
    "NoDetection",
    "DeviceProfile",
    "RASPBERRY_PI_4",
    "RASPBERRY_PI_PICO",
    "MethodResult",
    "evaluate_method",
    "compare_methods",
    "OSELM",
    "ForgettingOSELM",
    "OSELMAutoencoder",
    "MultiInstanceModel",
]
