"""Ablation — OS-ELM hidden-layer width.

The paper fixes 22 hidden nodes for both datasets without justification.
This bench sweeps the bottleneck width on the reduced NSL-KDD stream: the
autoencoder needs enough capacity to separate the classes but a narrow
bottleneck is what makes anomaly scores informative (and keeps the
``O(H²)`` rank-1 update cheap on the device — the cost column).

The sweep is a list of :class:`repro.engine.ExperimentSpec` cells (one
per width) resolved through the registries and run by the grid runner's
:func:`repro.metrics.parallel.run_cell` — each row is reproducible from
its spec alone.
"""

from __future__ import annotations

import pytest

from repro.device import RASPBERRY_PI_PICO, StageCostModel
from repro.engine import ExperimentSpec
from repro.metrics import format_table
from repro.metrics.parallel import run_cell

WIDTHS = (4, 10, 22, 48, 96)
DRIFT_AT = 2500

SPECS = {
    h: ExperimentSpec(
        name=f"H = {h}",
        pipeline="proposed",
        dataset="nslkdd",
        seed=0,
        model_seed=1,
        pipeline_kwargs={"n_hidden": h, "window_size": 100},
        dataset_kwargs={"n_train": 800, "n_test": 8000, "drift_at": DRIFT_AT},
    )
    for h in WIDTHS
}


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for h, spec in SPECS.items():
        res = run_cell(spec)
        pico_ms = RASPBERRY_PI_PICO.ms_for_flops(
            StageCostModel(2, 38, h).label_prediction().flops
        )
        out[h] = (res.accuracy, res.first_delay, pico_ms)
    return out


def test_hidden_width_table(sweep, record_table, benchmark):
    def rows():
        return [
            [f"H = {h}", round(100 * sweep[h][0], 1), sweep[h][1],
             round(sweep[h][2], 1)]
            for h in WIDTHS
        ]

    record_table(format_table(
        ["width", "accuracy %", "delay", "Pico prediction ms (D=38)"],
        benchmark(rows),
        title="ABLATION: OS-ELM hidden width (paper fixes H = 22)",
    ))


def test_paper_width_competitive(sweep, benchmark):
    """H=22 lands within a few points of the best width in the sweep —
    the accuracy landscape over widths is flat (reconstruction variance
    dominates), so the paper's fixed 22 is a reasonable default."""
    accs = benchmark(lambda: {h: sweep[h][0] for h in WIDTHS})
    assert accs[22] > max(accs.values()) - 0.08


def test_cost_grows_with_width(sweep, benchmark):
    costs = benchmark(lambda: [sweep[h][2] for h in WIDTHS])
    assert all(a < b for a, b in zip(costs, costs[1:]))


def test_every_width_detects_and_recovers(sweep, benchmark):
    out = benchmark(lambda: {h: sweep[h] for h in WIDTHS})
    for h, (acc, delay, _) in out.items():
        assert delay is not None, f"H={h} missed the drift"
        assert acc > 0.85, f"H={h} failed to recover"
