"""Ablation — the multi-window ensemble (the paper's future-work feature).

§5.2 ends: "Using multiple detection models with different window sizes is
our future work to address more complicated drift behaviors." This bench
runs :class:`repro.core.MultiWindowDetector` (W = 10/50/150) against the
single-window detectors on the sudden and reoccurring fan scenarios and
shows the policy trade-off Table 3 motivates.
"""

from __future__ import annotations

import pytest

from repro.core import CentroidSet, MultiWindowDetector, build_model, build_proposed
from repro.core.threshold import calibrate_drift_threshold, calibrate_error_threshold
from repro.datasets import make_cooling_fan_like
from repro.metrics import detection_delay, evaluate_method, format_table

WINDOWS = (10, 50, 150)
DRIFT_AT = 120


def run_ensemble(scenario: str, policy: str):
    train, test = make_cooling_fan_like(scenario, seed=0)
    model = build_model(train.X, train.y, seed=1)
    cents = CentroidSet.from_labelled_data(train.X, train.y, max_count=500)
    theta_drift = calibrate_drift_threshold(train.X, train.y, cents)
    scores = model.scores(train.X)[range(len(train.X)), train.y]
    theta_error = calibrate_error_threshold(scores, z=3.0)
    ens = MultiWindowDetector(
        cents, WINDOWS, theta_error=theta_error, theta_drift=theta_drift, policy=policy
    )
    detections = []
    for i, (x, _) in enumerate(test):
        c, err = model.predict_with_score(x)
        if ens.update(x, c, err).drift_detected:
            detections.append(i)
            ens.end_drift()
    return detections


@pytest.fixture(scope="module")
def results():
    out = {}
    for scenario in ("sudden", "reoccurring"):
        for policy in ("any", "majority", "all"):
            det = run_ensemble(scenario, policy)
            out[(scenario, policy)] = detection_delay(det, DRIFT_AT)
        for w in WINDOWS:
            train, test = make_cooling_fan_like(scenario, seed=0)
            pipe = build_proposed(train.X, train.y, window_size=w, seed=1)
            res = evaluate_method(pipe, test)
            out[(scenario, f"W={w}")] = detection_delay(res.delay.detections, DRIFT_AT)
    return out


def test_multi_window_table(results, record_table, benchmark):
    configs = ["W=10", "W=50", "W=150", "any", "majority", "all"]

    def rows():
        return [
            [cfg,
             results[("sudden", cfg)] if results[("sudden", cfg)] is not None else None,
             results[("reoccurring", cfg)] if results[("reoccurring", cfg)] is not None else None]
            for cfg in configs
        ]

    record_table(format_table(
        ["configuration", "sudden delay", "reoccurring delay"],
        benchmark(rows),
        title="ABLATION: multi-window ensemble (future work) vs single windows, fan streams",
    ))


def test_any_policy_as_fast_as_smallest_window(results, benchmark):
    d = benchmark(lambda: results)
    assert d[("sudden", "any")] is not None
    assert d[("sudden", "any")] <= d[("sudden", "W=10")] + 5


def test_all_policy_ignores_reoccurring_blip(results, benchmark):
    """'all' requires even W=150 to agree — like the paper's W=150 row it
    does not fire on the 50-sample transient."""
    d = benchmark(lambda: results)
    assert d[("reoccurring", "all")] is None

def test_majority_detects_sudden(results, benchmark):
    d = benchmark(lambda: results)
    assert d[("sudden", "majority")] is not None
    assert d[("sudden", "majority")] <= d[("sudden", "W=150")]
