"""Proof that disabled telemetry is (near-)free on the streaming hot path.

The instrumentation contract (``repro.telemetry``) is that every hot-path
probe hides behind a single ``tel.enabled`` attribute check, so a pipeline
with telemetry *off* — the default — must run within 5 % of the pre-
instrumentation code. This bench measures that directly by racing

* the real, instrumented ``StreamPipeline.run`` (telemetry disabled)

against

* a hand-rolled replica of the pre-instrumentation chunked loop — the
  same batched scoring, the same ``StepRecord`` construction, but zero
  telemetry touch points

on a pure-predict stream (frozen baseline model: no drifts, no
reconstruction — the worst case for relative overhead, since there is no
heavy adaptation work to hide behind).

Two entry points:

* pytest-benchmark (regression tracking)::

      PYTHONPATH=src python -m pytest benchmarks/bench_telemetry_overhead.py --benchmark-only

* standalone smoke check for CI (no pytest needed; exits non-zero when
  the overhead bound is violated)::

      PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, List

import numpy as np

from repro.core.pipeline import NoDetectionPipeline, StepRecord
from repro.datasets import DataStream
from repro.oselm import MultiInstanceModel
from repro.telemetry import RingBufferSink, configure

#: Relative wall-time overhead allowed for disabled telemetry.
OVERHEAD_BOUND = 0.05

D, H, C = 128, 22, 2


def make_fixture(n_samples: int = 8192, seed: int = 0):
    """A frozen baseline pipeline + a pure-predict stream (no drift)."""
    rng = np.random.default_rng(seed)
    X0 = rng.random((80, D))
    y0 = (np.arange(80) % C).astype(np.int64)
    model = MultiInstanceModel(D, H, C, seed=seed).fit_initial(X0, y0)
    X = rng.random((n_samples, D))
    y = (rng.random(n_samples) < 0.5).astype(np.int64)
    stream = DataStream(X, y, name="bench")
    return model, stream


def uninstrumented_run(
    model: MultiInstanceModel, stream: DataStream, chunk: int = 256
) -> List[StepRecord]:
    """The pre-instrumentation chunked pure-predict loop, verbatim.

    Replicates what ``NoDetectionPipeline.run`` did before telemetry
    existed: batched row-stable scoring per chunk plus per-sample
    ``StepRecord`` construction — and nothing else.
    """
    records: List[StepRecord] = []
    X, y = stream.X, stream.y
    n = len(stream)
    i = 0
    while i < n:
        Xc, yc = X[i : i + chunk], y[i : i + chunk]
        S = model.scores_rowwise(Xc)
        labels = S.argmin(axis=1)
        scores = S[np.arange(len(S)), labels]
        for j in range(len(Xc)):
            p, t = int(labels[j]), int(yc[j])
            records.append(
                StepRecord(
                    index=i + j,
                    predicted=p,
                    true_label=t,
                    correct=p == t,
                    anomaly_score=float(scores[j]),
                    drift_detected=False,
                    reconstructing=False,
                    phase="predict",
                )
            )
        i += len(Xc)
    return records


# --------------------------------------------------------------------------
# pytest-benchmark entry points
# --------------------------------------------------------------------------


def test_uninstrumented_baseline(benchmark):
    """Reference: the pre-telemetry loop (what 'zero overhead' means)."""
    model, stream = make_fixture()
    benchmark(lambda: uninstrumented_run(model, stream))


def test_instrumented_disabled(benchmark):
    """The shipped ``run`` with telemetry off — must track the baseline."""
    model, stream = make_fixture()

    def go():
        return NoDetectionPipeline(model).run(stream)

    benchmark(go)


def test_instrumented_enabled_ring(benchmark):
    """For scale: telemetry on with a ring sink (not bound by the 5 %)."""
    model, stream = make_fixture()
    configure(enabled=True, sinks=[RingBufferSink()], reset=True)
    try:
        benchmark(lambda: NoDetectionPipeline(model).run(stream))
    finally:
        configure(enabled=False, sinks=[], reset=True)


def test_overhead_within_bound():
    """Plain assertion (runs in the default suite, no --benchmark-only)."""
    ratios = []
    for _ in range(3):  # re-measure on noise: any clean attempt passes
        ratios.append(measure_overhead(n_samples=4096, rounds=7))
        if ratios[-1] < OVERHEAD_BOUND:
            return
    joined = ", ".join(f"{r:+.2%}" for r in ratios)
    raise AssertionError(
        f"disabled-telemetry overhead exceeded {OVERHEAD_BOUND:.0%} in every "
        f"attempt: {joined}"
    )


# --------------------------------------------------------------------------
# Standalone smoke mode (CI)
# --------------------------------------------------------------------------


def _best_seconds(fn: Callable[[], object], rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure(*, n_samples: int, rounds: int) -> tuple:
    """Best-of-``rounds`` timing → (overhead ratio, best instr s, best plain s).

    The two variants are timed in interleaved rounds (A/B, A/B, ...) so
    slow drift of the host (thermal, noisy neighbours) cancels out of the
    best-of comparison; a warm-up round primes caches and allocators.
    """
    configure(enabled=False, sinks=[], reset=True)
    model, stream = make_fixture(n_samples=n_samples)

    def instrumented():
        return NoDetectionPipeline(model).run(stream)

    def plain():
        return uninstrumented_run(model, stream)

    # Warm-up + sanity: both paths must produce identical records.
    a, b = instrumented(), plain()
    assert [r.__dict__ for r in a] == [r.__dict__ for r in b], (
        "instrumented and uninstrumented runs disagree"
    )

    best_plain = float("inf")
    best_inst = float("inf")
    for _ in range(rounds):
        best_inst = min(best_inst, _best_seconds(instrumented, 1))
        best_plain = min(best_plain, _best_seconds(plain, 1))
    return best_inst / best_plain - 1.0, best_inst, best_plain


def measure_overhead(*, n_samples: int, rounds: int) -> float:
    """Best-of-``rounds`` relative overhead of the instrumented loop."""
    return _measure(n_samples=n_samples, rounds=rounds)[0]


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast bounded check (CI): fewer samples/rounds")
    parser.add_argument("--samples", type=int, default=None,
                        help="stream length (default 16384; 4096 with --smoke)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timing rounds per variant (default 15; 7 with --smoke)")
    parser.add_argument("--attempts", type=int, default=3,
                        help="re-measure up to this many times before failing")
    parser.add_argument("--history", default=None, metavar="PATH",
                        help="perf-trajectory JSONL to append to "
                             "(default: ./BENCH_history.jsonl at the repo root)")
    parser.add_argument("--no-history", action="store_true",
                        help="skip the trajectory append (exploratory runs)")
    args = parser.parse_args(argv)

    n_samples = args.samples or (4096 if args.smoke else 16384)
    rounds = args.rounds or (7 if args.smoke else 15)

    def record(ratio: float, best_inst: float) -> None:
        if args.no_history:
            return
        from bench_history import DEFAULT_HISTORY, append_history

        append_history(
            args.history or DEFAULT_HISTORY,
            "telemetry_overhead",
            "smoke" if args.smoke else "full",
            {
                "samples_per_sec": n_samples / best_inst,
                "overhead_ratio": ratio,
            },
        )

    ratio, best_inst = float("inf"), float("inf")
    for attempt in range(1, args.attempts + 1):
        ratio, best_inst, _ = _measure(n_samples=n_samples, rounds=rounds)
        print(
            f"attempt {attempt}: disabled-telemetry overhead {ratio:+.2%} "
            f"(bound {OVERHEAD_BOUND:.0%}, {n_samples} samples, "
            f"best of {rounds})"
        )
        if ratio < OVERHEAD_BOUND:
            record(ratio, best_inst)
            print("OK: instrumentation is free when disabled.")
            return 0
    record(ratio, best_inst)
    print(f"FAIL: overhead {ratio:+.2%} exceeds {OVERHEAD_BOUND:.0%}.")
    return 1


if __name__ == "__main__":
    sys.exit(main())
