"""Shared benchmark infrastructure.

* ``record_table`` — benches register their reproduced paper tables here;
  a ``pytest_terminal_summary`` hook prints them all at the end of the
  run, so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
  captures both the timing table and the reproduction tables.
* Session-scoped caches for the expensive experiment runs (the full
  NSL-KDD five-method comparison, the fan scenario matrix) so that
  several benches can report on one run.

The grid runs go through :class:`repro.metrics.ParallelRunner`: set
``REPRO_BENCH_WORKERS=<n>`` to fan the cells over ``n`` worker processes
(default: one per CPU; single-CPU hosts run inline) and
``REPRO_BENCH_CACHE=<dir>`` to cache cell results on disk between runs.
"""

from __future__ import annotations

import os
from typing import Callable, Dict

import pytest

from repro.datasets import make_nslkdd_like
from repro.metrics import MethodResult, ParallelRunner, make_grid

_TABLES: list[str] = []


@pytest.fixture
def record_table() -> Callable[[str], None]:
    """Register a reproduced-table string for the end-of-run summary."""

    def _record(text: str) -> None:
        _TABLES.append(text)

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: D103
    if not _TABLES:
        return
    terminalreporter.section("Reproduced paper tables and figures")
    for text in _TABLES:
        terminalreporter.write_line(text)
        terminalreporter.write_line("")


# --------------------------------------------------------------------------
# Cached experiment runs
# --------------------------------------------------------------------------

#: Paper hyper-parameters for NSL-KDD (§4.2).
NSLKDD_BATCH = 480
NSLKDD_BINS = 32
SEED = 1

#: Table 2's method configurations as declarative ParallelRunner specs.
#: The ONLAD forgetting rate is deliberately the mis-tuned 0.90: the paper
#: used alpha=0.97 on real NSL-KDD and found "the parameter tuning of a
#: forgetting rate of ONLAD is difficult" (§5.1); on our synthetic stream
#: the analogous rate is 0.90 (bench_ablation_forgetting sweeps this).
NSLKDD_METHODS = {
    "Quant Tree": ("quanttree", {"batch_size": NSLKDD_BATCH, "n_bins": NSLKDD_BINS}),
    "SPLL": ("spll", {"batch_size": NSLKDD_BATCH}),
    "Baseline (no concept drift detection)": ("baseline", {}),
    "ONLAD": ("onlad", {"forgetting_factor": 0.90}),
    "Proposed method (Window size = 100)": ("proposed", {"window_size": 100}),
    "Proposed method (Window size = 250)": ("proposed", {"window_size": 250}),
    "Proposed method (Window size = 1000)": ("proposed", {"window_size": 1000}),
}


@pytest.fixture(scope="session")
def grid_runner() -> ParallelRunner:
    """The runner every benchmark grid goes through (env-tunable)."""
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or None
    return ParallelRunner(
        cache_dir=os.environ.get("REPRO_BENCH_CACHE") or None,
        max_workers=workers,
        keep_records=True,  # benches need phase tallies and accuracy curves
        retries=1,
    )


@pytest.fixture(scope="session")
def nslkdd_streams():
    """The paper-sized NSL-KDD-like streams (2 522 train / 22 701 test)."""
    return make_nslkdd_like(seed=0)


@pytest.fixture(scope="session")
def nslkdd_results(grid_runner) -> Dict[str, MethodResult]:
    """All Table-2 method configurations run over the full test stream."""
    cells = make_grid(
        NSLKDD_METHODS, {"nslkdd": ("nslkdd", {"seed": 0})}, seeds=[SEED]
    )
    return {r.name: r.to_method_result() for r in grid_runner.run(cells)}


@pytest.fixture(scope="session")
def fan_delay_matrix(grid_runner):
    """Table 3's scenario × window-size detection-delay matrix."""
    from repro.metrics import detection_delay

    results = grid_runner.run_grid(
        methods={f"W={w}": ("proposed", {"window_size": w}) for w in (10, 50, 150)},
        streams={
            s: ("coolingfan", {"scenario": s, "seed": 0})
            for s in ("sudden", "gradual", "reoccurring")
        },
        seeds=[SEED],
    )
    return {
        (scenario, int(label[2:])): detection_delay(tuple(res.detections), 120)
        for (label, scenario, _seed), res in results.items()
    }
