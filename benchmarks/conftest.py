"""Shared benchmark infrastructure.

* ``record_table`` — benches register their reproduced paper tables here;
  a ``pytest_terminal_summary`` hook prints them all at the end of the
  run, so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
  captures both the timing table and the reproduction tables.
* Session-scoped caches for the expensive experiment runs (the full
  NSL-KDD five-method comparison, the fan scenario matrix) so that
  several benches can report on one run.
"""

from __future__ import annotations

from typing import Callable, Dict

import pytest

from repro.core import (
    build_baseline,
    build_onlad,
    build_proposed,
    build_quanttree_pipeline,
    build_spll_pipeline,
)
from repro.datasets import make_cooling_fan_like, make_nslkdd_like
from repro.metrics import MethodResult, evaluate_method

_TABLES: list[str] = []


@pytest.fixture
def record_table() -> Callable[[str], None]:
    """Register a reproduced-table string for the end-of-run summary."""

    def _record(text: str) -> None:
        _TABLES.append(text)

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: D103
    if not _TABLES:
        return
    terminalreporter.section("Reproduced paper tables and figures")
    for text in _TABLES:
        terminalreporter.write_line(text)
        terminalreporter.write_line("")


# --------------------------------------------------------------------------
# Cached experiment runs
# --------------------------------------------------------------------------

#: Paper hyper-parameters for NSL-KDD (§4.2).
NSLKDD_BATCH = 480
NSLKDD_BINS = 32
SEED = 1


@pytest.fixture(scope="session")
def nslkdd_streams():
    """The paper-sized NSL-KDD-like streams (2 522 train / 22 701 test)."""
    return make_nslkdd_like(seed=0)


@pytest.fixture(scope="session")
def nslkdd_results(nslkdd_streams) -> Dict[str, MethodResult]:
    """All Table-2 method configurations run over the full test stream."""
    train, test = nslkdd_streams
    builders = {
        "Quant Tree": lambda: build_quanttree_pipeline(
            train.X, train.y, batch_size=NSLKDD_BATCH, n_bins=NSLKDD_BINS, seed=SEED
        ),
        "SPLL": lambda: build_spll_pipeline(
            train.X, train.y, batch_size=NSLKDD_BATCH, seed=SEED
        ),
        "Baseline (no concept drift detection)": lambda: build_baseline(
            train.X, train.y, seed=SEED
        ),
        # The paper used alpha=0.97 on real NSL-KDD and found "the
        # parameter tuning of a forgetting rate of ONLAD is difficult"
        # (§5.1). On our synthetic stream the analogous mis-tuned rate is
        # 0.90 (bench_ablation_forgetting sweeps the sensitivity).
        "ONLAD": lambda: build_onlad(
            train.X, train.y, forgetting_factor=0.90, seed=SEED
        ),
        "Proposed method (Window size = 100)": lambda: build_proposed(
            train.X, train.y, window_size=100, seed=SEED
        ),
        "Proposed method (Window size = 250)": lambda: build_proposed(
            train.X, train.y, window_size=250, seed=SEED
        ),
        "Proposed method (Window size = 1000)": lambda: build_proposed(
            train.X, train.y, window_size=1000, seed=SEED
        ),
    }
    return {name: evaluate_method(b(), test, name=name) for name, b in builders.items()}


@pytest.fixture(scope="session")
def fan_delay_matrix():
    """Table 3's scenario × window-size detection-delay matrix."""
    from repro.metrics import detection_delay

    out: dict[tuple[str, int], int | None] = {}
    for scenario in ("sudden", "gradual", "reoccurring"):
        train, test = make_cooling_fan_like(scenario, seed=0)
        for window in (10, 50, 150):
            pipe = build_proposed(train.X, train.y, window_size=window, seed=SEED)
            res = evaluate_method(pipe, test)
            out[(scenario, window)] = detection_delay(res.delay.detections, 120)
    return out
