"""Table 6 — per-sample latency breakdown on the Raspberry Pi Pico.

Each of the six stages of the proposed method is priced by the structural
op-count model at the Pico demo geometry (C=2 instances, D=511 features,
H=22 hidden nodes). The Pico profile's single calibration constant is
pinned on the label-prediction row; every other row is a *prediction* of
the model, compared against the paper's measurement.
"""

from __future__ import annotations

import pytest

from repro.device import RASPBERRY_PI_PICO, StageCostModel, stage_latency_table
from repro.metrics import format_table

PAPER_TABLE6 = {
    "Label prediction": 148.87,
    "Distance computation": 10.58,
    "Model retraining without label prediction": 25.42,
    "Model retraining with label prediction": 166.65,
    "Label coordinates initialization": 25.59,
    "Label coordinates update": 6.05,
}

GEOMETRY = StageCostModel(n_labels=2, n_features=511, n_hidden=22)


def test_table6_reproduction(record_table, benchmark):
    ours = benchmark(lambda: stage_latency_table(GEOMETRY, RASPBERRY_PI_PICO))
    rows = [
        [stage, round(ours[stage], 2), paper, round(ours[stage] / paper, 2)]
        for stage, paper in PAPER_TABLE6.items()
    ]
    record_table(format_table(
        ["stage", "reproduced ms", "paper ms", "ratio"],
        rows,
        title="TABLE 6: per-sample latency breakdown on Raspberry Pi Pico (C=2, D=511, H=22)",
    ))

    ours = stage_latency_table(GEOMETRY, RASPBERRY_PI_PICO)
    # Calibration row reproduces exactly (by construction, within rounding).
    assert ours["Label prediction"] == pytest.approx(148.87, rel=0.05)
    # All other rows within the same order of magnitude.
    for stage, paper in PAPER_TABLE6.items():
        assert paper / 5 < ours[stage] < 3 * paper, stage


def test_detection_overhead_below_prediction(benchmark):
    """Paper §5.4: 'the additional computation time for the concept drift
    detection is less than the label prediction time'."""
    ours = benchmark(lambda: stage_latency_table(GEOMETRY, RASPBERRY_PI_PICO))
    detection_extra = (
        ours["Distance computation"]
        + ours["Label coordinates initialization"]
        + ours["Label coordinates update"]
    )
    assert detection_extra < ours["Label prediction"]


def test_latency_within_few_hundred_ms(benchmark):
    """Paper §5.4: 'the latency is within a few hundred milliseconds even
    in such a low-end edge device' — per stage and for the worst-case
    sample (prediction + training + coordinate upkeep)."""
    ours = benchmark(lambda: stage_latency_table(GEOMETRY, RASPBERRY_PI_PICO))
    assert all(v < 300 for v in ours.values())
    worst_sample = (
        ours["Model retraining with label prediction"]
        + ours["Label coordinates initialization"]
        + ours["Label coordinates update"]
        + ours["Distance computation"]
    )
    assert worst_sample < 500


def test_host_measured_stage_times_scale_like_model(benchmark):
    """Sanity link between the analytic model and reality: on the host, a
    label prediction (C forwards) costs more than a distance computation,
    by a large factor — as the op model predicts."""
    import time

    import numpy as np

    from repro.core import CentroidSet
    from repro.oselm import MultiInstanceModel

    rng = np.random.default_rng(0)
    X = rng.random((60, 511))
    y = (np.arange(60) % 2).astype(np.int64)
    model = MultiInstanceModel(511, 22, 2, seed=0).fit_initial(X, y)
    cents = CentroidSet.from_labelled_data(X, y, 2)
    x = rng.random(511)

    def predict_many():
        for _ in range(50):
            model.predict_with_score(x)

    benchmark(predict_many)

    t0 = time.perf_counter()
    for _ in range(50):
        model.predict_with_score(x)
    t_pred = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(50):
        cents.update(0, x)
        cents.drift_distance()
    t_dist = time.perf_counter() - t0
    assert t_pred > t_dist
