"""Ablation — ONLAD forgetting-rate sensitivity (§5.1's tuning claim).

"The results show that the parameter tuning of a forgetting rate of ONLAD
is difficult." This bench sweeps the forgetting factor over the reduced
NSL-KDD-like stream and shows the non-monotone accuracy landscape: too
aggressive (small α) destabilises, too conservative (α→1) cannot track
the drift, and no setting matches the drift-triggered reconstruction of
the proposed method.
"""

from __future__ import annotations

import pytest

from repro.core import build_onlad, build_proposed
from repro.datasets import NSLKDDConfig, make_nslkdd_like
from repro.metrics import evaluate_method, format_table, segment_accuracy

FACTORS = (0.90, 0.95, 0.97, 0.99, 1.0)
DRIFT_AT = 2500


@pytest.fixture(scope="module")
def streams():
    cfg = NSLKDDConfig(n_train=800, n_test=8000, drift_at=DRIFT_AT)
    return make_nslkdd_like(cfg, seed=0)


@pytest.fixture(scope="module")
def sweep(streams):
    train, test = streams
    out = {}
    for ff in FACTORS:
        pipe = build_onlad(train.X, train.y, forgetting_factor=ff, seed=1)
        res = evaluate_method(pipe, test)
        pre, post = segment_accuracy(res.records, [DRIFT_AT])
        out[ff] = (res.accuracy, pre, post)
    prop = build_proposed(train.X, train.y, window_size=100, seed=1)
    out["proposed"] = (evaluate_method(prop, test).accuracy, None, None)
    return out


def test_forgetting_sweep_table(sweep, record_table, benchmark):
    def rows():
        out = []
        for ff in FACTORS:
            acc, pre, post = sweep[ff]
            out.append([f"alpha = {ff}", round(100 * acc, 1),
                        round(100 * pre, 1), round(100 * post, 1)])
        out.append(["proposed (W=100)", round(100 * sweep["proposed"][0], 1), None, None])
        return out

    record_table(format_table(
        ["ONLAD configuration", "overall %", "pre-drift %", "post-drift %"],
        benchmark(rows),
        title="ABLATION: ONLAD forgetting-rate sweep (paper §5.1: 'tuning ... is difficult')",
    ))


def test_no_forgetting_rate_beats_proposed(sweep, benchmark):
    best = benchmark(lambda: max(sweep[ff][0] for ff in FACTORS))
    assert sweep["proposed"][0] > best - 0.02  # proposed ≥ best-tuned ONLAD (±2 pts)


def test_sensitivity_is_substantial(sweep, benchmark):
    """Accuracy swings by several points across plausible α values —
    the quantitative content of 'tuning is difficult'."""
    accs = benchmark(lambda: [sweep[ff][0] for ff in FACTORS])
    assert max(accs) - min(accs) > 0.03


def test_alpha_one_cannot_track_drift(sweep, benchmark):
    """α=1 (no forgetting) keeps pre-drift accuracy but degrades after the
    drift relative to the best tracking configuration."""
    post = benchmark(lambda: {ff: sweep[ff][2] for ff in FACTORS})
    assert post[1.0] <= max(post[ff] for ff in FACTORS if ff < 1.0)
