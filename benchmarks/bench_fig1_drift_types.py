"""Figure 1 — the four concept-drift archetypes.

Regenerates the figure's content as data: for each drift type (sudden,
gradual, incremental, reoccurring) the bench emits the stream's
"concept indicator" series (share of new-concept mass per segment), whose
shapes are the four panels of Figure 1, and verifies that the proposed
detector responds to every type.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_proposed
from repro.datasets import (
    GaussianConcept,
    make_gradual_drift_stream,
    make_incremental_drift_stream,
    make_reoccurring_drift_stream,
    make_stationary_stream,
    make_sudden_drift_stream,
)
from repro.metrics import format_table

N = 1200
OLD = GaussianConcept(np.array([[0.2] * 6, [0.8] * 6]), 0.05)
NEW = GaussianConcept(np.array([[0.2] * 6, [0.8] * 6]) + 0.5, 0.05)


def build_streams():
    return {
        "sudden": make_sudden_drift_stream(OLD, NEW, n_samples=N, drift_at=400, seed=0),
        "gradual": make_gradual_drift_stream(
            OLD, NEW, n_samples=N, drift_start=400, drift_end=900, seed=0
        ),
        "incremental": make_incremental_drift_stream(
            OLD, NEW, n_samples=N, drift_start=400, drift_end=900, seed=0
        ),
        "reoccurring": make_reoccurring_drift_stream(
            OLD, NEW, n_samples=N, drift_at=400, reoccur_at=700, seed=0
        ),
    }


def concept_indicator(stream, segments=12):
    """Mean feature level per segment — tracks which concept is active."""
    bounds = np.linspace(0, len(stream), segments + 1).astype(int)
    return [float(stream.X[a:b].mean()) for a, b in zip(bounds, bounds[1:])]


def test_figure1_series(record_table, benchmark):
    streams = benchmark(build_streams)
    rows = []
    for name, stream in streams.items():
        series = concept_indicator(stream)
        lo, hi = min(series), max(series)
        glyphs = "".join(
            "▁▂▃▄▅▆▇█"[int(7 * (v - lo) / (hi - lo + 1e-12))] for v in series
        )
        rows.append([name, glyphs, str(stream.drift_points)])
    record_table(format_table(
        ["drift type", "concept level over time", "true drift points"],
        rows,
        title="FIGURE 1: the four concept-drift types (12-segment concept indicator)",
    ))

    # Structural checks per panel.
    s = streams["sudden"]
    ind = concept_indicator(s)
    assert ind[0] < ind[-1]
    g = concept_indicator(streams["gradual"])
    inc = concept_indicator(streams["incremental"])
    # Gradual/incremental pass through intermediate levels.
    assert min(g) < g[6] < max(g)
    assert min(inc) < inc[6] < max(inc)
    r = concept_indicator(streams["reoccurring"])
    assert r[5] > r[0] and abs(r[-1] - r[0]) < 0.1  # returns to the old level


@pytest.mark.parametrize("kind", ["sudden", "gradual", "incremental", "reoccurring"])
def test_detector_responds_to_each_type(kind, benchmark):
    streams = build_streams()
    stream = streams[kind]
    train = make_stationary_stream(OLD, 300, seed=3)

    def run():
        pipe = build_proposed(
            train.X, train.y, window_size=30, n_hidden=8,
            reconstruction_samples=120, seed=1,
        )
        return pipe.run(stream)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    detections = [r.index for r in records if r.drift_detected]
    assert detections, f"no detection on {kind} drift"
    assert detections[0] >= 400  # never before the true drift
