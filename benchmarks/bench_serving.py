"""Serving benchmark: sustained ingest throughput and tail latency.

The serving acceptance scenario drives the full network path — seeded
load generator over HTTP into the asyncio front-end, through the
admission controller and per-device lanes, dispatched in arrival windows
to a batched-scoring fleet manager — and reports sustained samples/sec,
admission-to-completion p50/p99 latency, and the byte-identity verdict
for a sample of devices against standalone runs. Results land in
``BENCH_serving.json`` plus the shared perf trajectory
(``BENCH_history.jsonl``, gated by ``tools/check_bench_regression.py``).

Two entry points:

* pytest-benchmark (regression tracking)::

      PYTHONPATH=src python -m pytest benchmarks/bench_serving.py --benchmark-only

* standalone run for CI / the acceptance soak (exits non-zero if any
  sampled device's records diverge, or if chunks were lost)::

      PYTHONPATH=src python benchmarks/bench_serving.py --smoke   # 24 devices
      PYTHONPATH=src python benchmarks/bench_serving.py           # 1000 devices
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.engine import build_experiment
from repro.fleet.soak import make_fleet_specs, verify_device
from repro.serving import ServingStack, run_load

#: The acceptance-scale serving soak (full mode).
FULL = dict(
    n_devices=1000, capacity=64, n_test=120, feed_chunk=60,
    queue_capacity=64, verify=8,
)
#: CI smoke: same shape (devices >> capacity), seconds not minutes.
SMOKE = dict(
    n_devices=24, capacity=4, n_test=120, feed_chunk=60,
    queue_capacity=16, verify=4,
)


def run_serving(
    params: dict, *, seed: int = 0, http: bool = True, reorder: float = 0.2,
    n_shards=None, progress=None,
):
    """One served soak -> (LoadReport, mismatched device ids)."""
    specs = make_fleet_specs(
        params["n_devices"], seed=seed, n_test=params["n_test"]
    )
    streams = {dev: build_experiment(spec).test for dev, spec in specs.items()}
    with tempfile.TemporaryDirectory(prefix="repro-serving-bench-") as tmp:
        stack = ServingStack(
            capacity=params["capacity"],
            spool_dir=tmp,
            batch_scoring=True,
            n_shards=n_shards,
            queue_capacity=params["queue_capacity"],
            gap_window=8,
        )
        for dev, spec in specs.items():
            stack.register(dev, spec)
        stack.core.start()
        if http:
            stack.server.start()
        try:
            report = run_load(
                stack,
                streams,
                feed_chunk=params["feed_chunk"],
                seed=seed,
                reorder=reorder,
                retry_scale=0.05,
                progress=progress,
            )
            per_device = stack.finish_all()
        finally:
            stack.server.stop()
            stack.core.close()
    mismatches = [
        dev
        for dev in list(specs)[: params["verify"]]
        if not verify_device(specs[dev], per_device[dev])
    ]
    return report, mismatches


# --------------------------------------------------------------------------
# pytest-benchmark entry points
# --------------------------------------------------------------------------


def test_serving_ingest_throughput(benchmark):
    """Wall time of a small served soak over HTTP (verification excluded)."""
    params = dict(SMOKE, verify=0)
    report, _ = benchmark(lambda: run_serving(params))
    assert report.undelivered == 0 and report.completed == report.admitted


# --------------------------------------------------------------------------
# standalone entry point
# --------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="24-device / capacity-4 variant for CI (same shape)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="serve a ShardedFleetManager over N worker processes "
             "(default: one in-process manager)",
    )
    parser.add_argument(
        "--direct", action="store_true",
        help="skip HTTP: drive the ingestion core in-process (isolates "
             "the lane/dispatch overhead from socket + JSON costs)",
    )
    parser.add_argument(
        "--reorder", type=float, default=0.2, metavar="P",
        help="probability a chunk is delivered out of order (default 0.2)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_serving.json",
        help="where to write the JSON report (default: ./BENCH_serving.json)",
    )
    parser.add_argument(
        "--history", default=None, metavar="PATH",
        help="perf-trajectory JSONL to append to "
             "(default: ./BENCH_history.jsonl at the repo root)",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip the trajectory append (exploratory runs)",
    )
    args = parser.parse_args(argv)
    params = SMOKE if args.smoke else FULL
    sharded = args.shards is not None and args.shards > 0

    transport = "direct" if args.direct else "http"
    shard_note = f", {args.shards} shards" if sharded else ""
    print(
        f"serving soak ({transport}): {params['n_devices']} devices, "
        f"capacity {params['capacity']}, {params['n_test']} samples/device, "
        f"reorder {args.reorder}{shard_note}"
    )
    report, mismatches = run_serving(
        params,
        seed=args.seed,
        http=not args.direct,
        reorder=args.reorder,
        n_shards=args.shards if sharded else None,
        progress=print,
    )
    mode = "smoke" if args.smoke else "full"
    if sharded:
        mode += f"-sharded{args.shards}"
    if args.direct:
        mode += "-direct"
    data = report.to_json()
    data["mode"] = mode
    data["seed"] = args.seed
    data["verified_devices"] = params["verify"]
    data["mismatches"] = mismatches

    Path(args.out).write_text(json.dumps(data, indent=2) + "\n")
    if not args.no_history:
        from bench_history import DEFAULT_HISTORY, append_history

        append_history(
            args.history or DEFAULT_HISTORY,
            "serving",
            mode,
            {
                "samples_per_sec": report.samples_per_sec,
                "p50_latency_ms": report.p50_latency_ms,
                "p99_latency_ms": report.p99_latency_ms,
                "admitted": report.admitted,
                "retries": report.retries,
            },
        )

    print(
        f"  {report.samples_per_sec:.0f} samples/s over {transport}, "
        f"p50 {report.p50_latency_ms:.1f} ms, p99 {report.p99_latency_ms:.1f} ms"
    )
    print(
        f"  {report.admitted}/{report.chunks} chunks admitted, "
        f"{report.retries} retries, statuses {report.statuses}"
    )
    print(f"  report -> {args.out}")
    if report.undelivered or report.completed != report.admitted:
        print(
            f"FAIL: {report.undelivered} undelivered chunk(s), "
            f"{report.admitted - report.completed} admitted without "
            "completion",
            file=sys.stderr,
        )
        return 1
    if mismatches:
        print(
            f"FAIL: served records diverged from standalone runs for "
            f"{mismatches}",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: {params['verify']} sampled device(s) byte-identical to "
        "standalone runs."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
