"""Ablation — the cooling-fan noisy environment (§4.1.2's second setting).

The paper's fan recordings exist in a silent and a noisy environment (a
ventilation fan nearby) but the evaluation tables use the silent one.
This bench completes the picture with three deployments of the sudden-
damage scenario:

1. **silent → silent** — the Table 3 reference;
2. **noisy → noisy** — trained and deployed under interference: damage
   detection still works (the interference is part of the trained
   concept);
3. **silent → noisy** — deployed into an environment it was not trained
   for: the environment change itself is a distribution shift, and the
   detector fires *immediately* (delay ≈ window length), long before any
   damage — exactly the behaviour an operator must be aware of.
"""

from __future__ import annotations

import pytest

from repro.core import build_proposed
from repro.datasets import make_cooling_fan_like
from repro.metrics import detection_delay, evaluate_method, format_table

WINDOW = 50
DRIFT_AT = 120


def run(train_env: str, test_env: str):
    train, test = make_cooling_fan_like(
        "sudden", environment=test_env, train_environment=train_env, seed=0
    )
    pipe = build_proposed(train.X, train.y, window_size=WINDOW, seed=1)
    return evaluate_method(pipe, test)


@pytest.fixture(scope="module")
def results():
    return {
        ("silent", "silent"): run("silent", "silent"),
        ("noisy", "noisy"): run("noisy", "noisy"),
        ("silent", "noisy"): run("silent", "noisy"),
    }


def test_noisy_environment_table(results, record_table, benchmark):
    def rows():
        out = []
        for (tr, te), res in results.items():
            first = res.delay.detections[0] if res.delay.detections else None
            out.append([
                f"{tr} -> {te}",
                first,
                detection_delay(res.delay.detections, DRIFT_AT),
            ])
        return out

    record_table(format_table(
        ["train -> deploy environment", "first detection", "delay vs damage @120"],
        benchmark(rows),
        title="ABLATION: fan noisy environment (sudden damage scenario, W=50)",
    ))


def test_silent_reference_behaviour(results, benchmark):
    res = benchmark(lambda: results[("silent", "silent")])
    d = detection_delay(res.delay.detections, DRIFT_AT)
    assert d is not None and d < 200
    assert not res.delay.false_positives


def test_noisy_trained_still_detects_damage(results, benchmark):
    """Interference baked into the trained concept does not mask damage."""
    res = benchmark(lambda: results[("noisy", "noisy")])
    d = detection_delay(res.delay.detections, DRIFT_AT)
    assert d is not None and d < 400


def test_environment_mismatch_fires_immediately(results, benchmark):
    """Deploying a silent-trained model into the noisy environment is
    itself a drift: the detector fires within roughly one window, well
    before the damage at sample 120."""
    res = benchmark(lambda: results[("silent", "noisy")])
    assert res.delay.detections
    assert res.delay.detections[0] < DRIFT_AT
