"""Table 3 — detection delay vs window size on the cooling-fan scenarios.

Reproduces the paper's 3 × 3 matrix (window sizes 10/50/150 × sudden /
gradual / reoccurring drifts, drift at sample 120) and asserts its three
qualitative findings (§5.2):

1. for sudden drifts, smaller windows detect faster;
2. gradual drifts take longer than sudden ones at every window size;
3. the 50-sample reoccurring blip is caught by W=10/50 but *not* W=150.
"""

from __future__ import annotations

from repro.metrics import format_table

PAPER_TABLE3 = {
    ("sudden", 10): 53, ("sudden", 50): 60, ("sudden", 150): 160,
    ("gradual", 10): 161, ("gradual", 50): 157, ("gradual", 150): 257,
    ("reoccurring", 10): 22, ("reoccurring", 50): 62, ("reoccurring", 150): None,
}


def test_table3_reproduction(fan_delay_matrix, record_table, benchmark):
    def assemble():
        rows = []
        for window in (10, 50, 150):
            row: list[object] = [f"Window size = {window}"]
            for scenario in ("sudden", "gradual", "reoccurring"):
                ours = fan_delay_matrix[(scenario, window)]
                paper = PAPER_TABLE3[(scenario, window)]
                ours_s = "-" if ours is None else str(ours)
                paper_s = "-" if paper is None else str(paper)
                row.append(f"{ours_s} ({paper_s})")
            rows.append(row)
        return rows

    rows = benchmark(assemble)
    record_table(format_table(
        ["", "Sudden", "Gradual", "Reoccurring"],
        rows,
        title="TABLE 3: detection delay, reproduced (paper) — cooling-fan stream, drift @120",
    ))


def test_sudden_delay_monotone_in_window(fan_delay_matrix, benchmark):
    d = benchmark(lambda: [fan_delay_matrix[("sudden", w)] for w in (10, 50, 150)])
    assert None not in d
    assert d[0] <= d[1] <= d[2]


def test_gradual_slower_than_sudden(fan_delay_matrix, benchmark):
    pairs = benchmark(lambda: [
        (fan_delay_matrix[("gradual", w)], fan_delay_matrix[("sudden", w)])
        for w in (10, 50, 150)
    ])
    for g, s in pairs:
        assert g is not None and g > s


def test_reoccurring_blip_window_dependence(fan_delay_matrix, benchmark):
    vals = benchmark(lambda: {
        w: fan_delay_matrix[("reoccurring", w)] for w in (10, 50, 150)
    })
    assert vals[10] is not None
    assert vals[50] is not None
    assert vals[150] is None  # paper's '-' entry


def test_delays_same_order_of_magnitude_as_paper(fan_delay_matrix, benchmark):
    def ratios():
        out = []
        for key, paper in PAPER_TABLE3.items():
            ours = fan_delay_matrix[key]
            if paper is not None and ours is not None:
                out.append(ours / paper)
        return out

    rs = benchmark(ratios)
    assert all(0.2 < r < 5.0 for r in rs)
