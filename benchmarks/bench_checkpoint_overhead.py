"""Proof that periodic checkpointing is cheap on the streaming hot path.

Crash safety is only deployable if its cost is marginal: the acceptance
bound is that ``StreamPipeline.run`` with ``checkpoint_every=256`` stays
within 10 % of the plain (non-checkpointed) run on a pure-predict stream
— the worst case for relative overhead, since there is no adaptation
work to hide the serialisation behind. Records must also be identical:
checkpointing may cost time, never fidelity.

The bounded quantity is process *CPU* time (``time.process_time``,
which charges the background checkpoint-writer thread to us — nothing
is hidden by offloading). CPU time is the honest proxy for the cost
the paper cares about — compute on a busy edge device — and unlike
wall time it is insensitive to noisy-neighbour drift on shared CI
runners, whose round-to-round wall variance alone can exceed the 10 %
bound. The pytest-benchmark entries still record wall time for trend
tracking.

Two entry points:

* pytest-benchmark (regression tracking)::

      PYTHONPATH=src python -m pytest benchmarks/bench_checkpoint_overhead.py --benchmark-only

* standalone smoke check for CI (no pytest needed; exits non-zero when
  the overhead bound is violated)::

      PYTHONPATH=src python benchmarks/bench_checkpoint_overhead.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, List

import numpy as np

from repro.core.pipeline import NoDetectionPipeline
from repro.datasets import DataStream
from repro.oselm import MultiInstanceModel

#: Relative process-CPU overhead allowed for checkpointing every 256 samples.
OVERHEAD_BOUND = 0.10
CHECKPOINT_EVERY = 256

D, H, C = 128, 22, 2


def make_fixture(n_samples: int = 8192, seed: int = 0):
    """A frozen baseline model + a pure-predict stream (no drift)."""
    rng = np.random.default_rng(seed)
    X0 = rng.random((80, D))
    y0 = (np.arange(80) % C).astype(np.int64)
    model = MultiInstanceModel(D, H, C, seed=seed).fit_initial(X0, y0)
    X = rng.random((n_samples, D))
    y = (rng.random(n_samples) < 0.5).astype(np.int64)
    stream = DataStream(X, y, name="bench")
    return model, stream


# --------------------------------------------------------------------------
# pytest-benchmark entry points
# --------------------------------------------------------------------------


def test_plain_baseline(benchmark):
    """Reference: the ordinary chunked run, no checkpoints."""
    model, stream = make_fixture()
    benchmark(lambda: NoDetectionPipeline(model).run(stream))


def test_checkpointed_every_256(benchmark):
    """The checkpointed run — must track the baseline within 10 %."""
    model, stream = make_fixture()
    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "bench.ckpt"
        benchmark(
            lambda: NoDetectionPipeline(model).run(
                stream, checkpoint_every=CHECKPOINT_EVERY, checkpoint_path=path
            )
        )


def test_overhead_within_bound():
    """Plain assertion (runs in the default suite, no --benchmark-only)."""
    ratios = []
    for _ in range(3):  # re-measure on noise: any clean attempt passes
        ratios.append(measure_overhead(n_samples=8192, rounds=7))
        if ratios[-1] < OVERHEAD_BOUND:
            return
    joined = ", ".join(f"{r:+.2%}" for r in ratios)
    raise AssertionError(
        f"checkpoint overhead exceeded {OVERHEAD_BOUND:.0%} in every "
        f"attempt: {joined}"
    )


# --------------------------------------------------------------------------
# Standalone smoke mode (CI)
# --------------------------------------------------------------------------


def _cpu_seconds(fn: Callable[[], object]) -> float:
    """Process CPU time of one call (all threads, kernel time included)."""
    t0 = time.process_time()
    fn()
    return time.process_time() - t0


def measure_overhead(*, n_samples: int, rounds: int) -> float:
    """Best-of-``rounds`` relative CPU overhead of the checkpointed run.

    Variants are timed in interleaved rounds (A/B, A/B, ...) so slow host
    drift cancels out of the best-of comparison. Each timing call uses a
    *fresh* pipeline — ``run`` advances ``_index``, so reuse would make
    later rounds measure a different code path.
    """
    model, stream = make_fixture(n_samples=n_samples)

    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "bench.ckpt"

        def plain():
            return NoDetectionPipeline(model).run(stream)

        def checkpointed():
            return NoDetectionPipeline(model).run(
                stream, checkpoint_every=CHECKPOINT_EVERY, checkpoint_path=path
            )

        # Warm-up + sanity: checkpointing must not change the records
        # (StepRecord is a frozen dataclass — field-wise equality).
        assert plain() == checkpointed(), "plain and checkpointed runs disagree"

        best_plain = float("inf")
        best_ckpt = float("inf")
        for _ in range(rounds):
            best_ckpt = min(best_ckpt, _cpu_seconds(checkpointed))
            best_plain = min(best_plain, _cpu_seconds(plain))
    return best_ckpt / best_plain - 1.0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast bounded check (CI): fewer samples/rounds")
    parser.add_argument("--samples", type=int, default=None,
                        help="stream length (default 16384; 8192 with --smoke)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timing rounds per variant (default 15; 7 with --smoke)")
    parser.add_argument("--attempts", type=int, default=3,
                        help="re-measure up to this many times before failing")
    args = parser.parse_args(argv)

    n_samples = args.samples or (8192 if args.smoke else 16384)
    rounds = args.rounds or (7 if args.smoke else 15)

    ratio = float("inf")
    for attempt in range(1, args.attempts + 1):
        ratio = measure_overhead(n_samples=n_samples, rounds=rounds)
        print(
            f"attempt {attempt}: checkpoint-every-{CHECKPOINT_EVERY} overhead "
            f"{ratio:+.2%} (bound {OVERHEAD_BOUND:.0%}, {n_samples} samples, "
            f"best of {rounds})"
        )
        if ratio < OVERHEAD_BOUND:
            print("OK: checkpointing is cheap on the hot path.")
            return 0
    print(f"FAIL: overhead {ratio:+.2%} exceeds {OVERHEAD_BOUND:.0%}.")
    return 1


if __name__ == "__main__":
    sys.exit(main())
