"""Figure 3 — trained vs recent centroid geometry around a drift.

Regenerates the figure's quantitative content: the trained-to-recent
centroid displacement (the paper's drift rate) over time, before and
after a drift, on a three-label 2-D stream — panel (c) says the rate
stays near zero while stationary, panel (d) says it grows after the
drift. Also micro-benchmarks the O(C·D) centroid update that makes the
method sequential.
"""

from __future__ import annotations

import numpy as np

from repro.core import CentroidSet
from repro.datasets import GaussianConcept, make_stationary_stream
from repro.metrics import format_table

MEANS = np.array([[0.2, 0.25], [0.5, 0.75], [0.8, 0.3]])
CONCEPT = GaussianConcept(MEANS, 0.05)
DRIFTED = GaussianConcept(
    np.array([[0.2, 0.25], [0.85, 0.9], [0.8, 0.3]]), 0.05
)


def run_geometry():
    rng = np.random.default_rng(0)
    train = make_stationary_stream(CONCEPT, 150, seed=1)
    cents = CentroidSet.from_labelled_data(train.X, train.y, 3, max_count=100)
    trace = []
    pre, _ = CONCEPT.sample(200, rng)
    for i, x in enumerate(pre):
        cents.update_coord(x)
        if (i + 1) % 50 == 0:
            trace.append(("stationary", i + 1, cents.drift_distance()))
    post, _ = DRIFTED.sample(600, rng)
    for i, x in enumerate(post):
        cents.update_coord(x)
        if (i + 1) % 150 == 0:
            trace.append(("drifted", 200 + i + 1, cents.drift_distance()))
    return cents, trace


def test_figure3_reproduction(record_table, benchmark):
    cents, trace = benchmark(run_geometry)
    rows = [[phase, n, round(d, 4)] for phase, n, d in trace]
    record_table(format_table(
        ["phase", "samples streamed", "drift rate (Σ L1 displacement)"],
        rows,
        title="FIGURE 3: recent-centroid displacement before (c) and after (d) a drift",
    ))

    stationary = [d for p, _, d in trace if p == "stationary"]
    drifted = [d for p, _, d in trace if p == "drifted"]
    # Panel (c): small displacement while stationary; panel (d): the
    # displacement grows by an order of magnitude after the drift.
    assert max(stationary) < 0.2
    assert drifted[-1] > 5 * max(stationary)
    # The moved label's recent centroid tracked the new cluster (the
    # max_count recency cap leaves a small asymptotic lag).
    assert np.abs(cents.recent[1] - [0.85, 0.9]).sum() < 0.2
    # Unmoved labels stayed put.
    assert np.abs(cents.recent[0] - MEANS[0]).sum() < 0.1
    assert np.abs(cents.recent[2] - MEANS[2]).sum() < 0.1


def test_centroid_update_throughput(benchmark):
    """Micro-benchmark of Algorithm 1 lines 12-14 at the paper's fan
    dimensionality (C=2, D=511) — the per-sample detection cost."""
    rng = np.random.default_rng(0)
    cents = CentroidSet(rng.random((2, 511)), np.array([100, 100]))
    x = rng.random(511)

    def step():
        cents.update(0, x)
        return cents.drift_distance()

    benchmark(step)


def test_init_coord_throughput(benchmark):
    """Micro-benchmark of Algorithm 3 at the fan dimensionality."""
    rng = np.random.default_rng(0)
    cents = CentroidSet(rng.random((2, 511)), np.array([1, 1]))
    x = rng.random(511)
    benchmark(lambda: cents.init_coord(x))
