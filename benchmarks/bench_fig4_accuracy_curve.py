"""Figure 4 — accuracy-vs-time curves of the five methods on NSL-KDD.

Regenerates the moving-accuracy series the paper plots and renders them
as a downsampled text table (one column per method, one row per stream
position) so the curve shapes — baseline collapse after the drift, ONLAD
decay, proposed/batch recovery — are visible in ``bench_output.txt``.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import format_table, segment_accuracy

DRIFT_AT = 8333
CURVE_WINDOW = 1000
METHODS = [
    "Quant Tree",
    "SPLL",
    "Baseline (no concept drift detection)",
    "ONLAD",
    "Proposed method (Window size = 100)",
]
SHORT = {
    "Quant Tree": "QT",
    "SPLL": "SPLL",
    "Baseline (no concept drift detection)": "Baseline",
    "ONLAD": "ONLAD",
    "Proposed method (Window size = 100)": "Proposed",
}


def test_figure4_series(nslkdd_results, record_table, benchmark):
    """Emit the downsampled Figure 4 series and check curve shapes."""

    def curves():
        out = {}
        for name in METHODS:
            pos, acc = nslkdd_results[name].accuracy_curve(window=CURVE_WINDOW)
            out[name] = (pos, acc)
        return out

    data = benchmark(curves)

    sample_points = np.arange(2000, 22001, 2000)
    rows = []
    for p in sample_points:
        row: list[object] = [int(p), "<- drift" if p == 10000 else ""]
        for name in METHODS:
            pos, acc = data[name]
            row.insert(len(row) - 1, round(float(acc[np.searchsorted(pos, p)]), 3))
        rows.append(row)
    record_table(format_table(
        ["sample", *[SHORT[m] for m in METHODS], ""],
        rows,
        title=f"FIGURE 4: moving accuracy (window {CURVE_WINDOW}) on the NSL-KDD-like stream",
    ))

    # Shape checks mirroring the paper's reading of the figure:
    base = nslkdd_results["Baseline (no concept drift detection)"]
    pre, post = segment_accuracy(base.records, [DRIFT_AT])
    assert pre > 0.9 and post < pre - 0.1  # baseline collapses after drift

    prop = nslkdd_results["Proposed method (Window size = 100)"]
    det = prop.first_delay + DRIFT_AT
    _, _, recovered = segment_accuracy(prop.records, [DRIFT_AT, det + 1000])
    assert recovered > post  # proposed recovers above the frozen baseline

    onlad = nslkdd_results["ONLAD"]
    assert onlad.accuracy < base.accuracy  # ONLAD is the weakest overall


def test_every_method_has_full_length_curve(nslkdd_results, benchmark):
    def lengths():
        return {
            name: len(res.records) for name, res in nslkdd_results.items()
        }

    out = benchmark(lengths)
    assert set(out.values()) == {22701}
