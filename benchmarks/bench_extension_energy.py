"""Extension — energy and battery life, the column the paper motivates
but never reports.

§1 motivates the work with battery-powered devices; Tables 5-6 report
time and memory only. With the calibrated latency model and catalogue
power draws, the energy per processed sample and the battery life of a
duty-cycled deployment follow directly — and they complete the paper's
deployment argument: the Pi Pico is ~100× slower per sample yet lasts
~50× longer on the same battery at a 1 Hz sampling rate, because its
6 mW sleep dominates the duty cycle.
"""

from __future__ import annotations

import pytest

from repro.device import (
    PI4_POWER,
    PICO_POWER,
    RASPBERRY_PI_4,
    RASPBERRY_PI_PICO,
    StageCostModel,
    battery_life_hours,
    energy_per_sample_mj,
)
from repro.metrics import format_table

GEOM = StageCostModel(2, 511, 22)
SAMPLE_PERIOD_S = 1.0  # 1 Hz vibration monitoring
BATTERY_WH = 10.0      # a small USB power bank


def per_sample_compute_seconds(device):
    """Steady-state per-sample work: prediction + detector upkeep."""
    flops = (
        GEOM.label_prediction().flops + GEOM.distance_computation().flops
    )
    return device.seconds_for_flops(flops)


@pytest.fixture(scope="module")
def rows():
    out = []
    for name, device, power in [
        ("Raspberry Pi 4", RASPBERRY_PI_4, PI4_POWER),
        ("Raspberry Pi Pico", RASPBERRY_PI_PICO, PICO_POWER),
    ]:
        t = per_sample_compute_seconds(device)
        mj = energy_per_sample_mj(power, t, sample_period_seconds=SAMPLE_PERIOD_S)
        hours = battery_life_hours(power, t, SAMPLE_PERIOD_S, battery_wh=BATTERY_WH)
        out.append([name, round(1e3 * t, 1), round(mj, 1), round(hours / 24, 1)])
    return out


def test_energy_table(rows, record_table, benchmark):
    data = benchmark(lambda: rows)
    record_table(format_table(
        ["device", "compute ms/sample", "energy mJ/sample (1 Hz)", "battery days (10 Wh)"],
        data,
        title="EXTENSION: energy & battery life of the proposed method (duty-cycled, 1 Hz)",
    ))


def test_pico_lasts_much_longer(rows, benchmark):
    data = benchmark(lambda: {r[0]: r[3] for r in rows})
    assert data["Raspberry Pi Pico"] > 30 * data["Raspberry Pi 4"]


def test_pico_compute_slower_but_within_period(rows, benchmark):
    data = benchmark(lambda: {r[0]: r[1] for r in rows})
    assert data["Raspberry Pi Pico"] > 50 * data["Raspberry Pi 4"]
    assert data["Raspberry Pi Pico"] < 1e3 * SAMPLE_PERIOD_S  # keeps up at 1 Hz
