"""Proof that an attached guard is (near-)free on clean streams.

The self-healing contract (``repro.guard``) is that while the ladder is
``HEALTHY`` and a chunk screens clean, :class:`RuntimeGuard` delegates to
the pipeline's own vectorized chunk path verbatim — so a guarded run over
fault-free data must cost within 5 % of an unguarded one, and produce
byte-identical records. This bench measures that directly by racing

* the shipped ``StreamPipeline.run`` with a guard attached
  (``impute_last_good`` policy, bounds learned from the init set, stock
  numeric-health sentinel)

against

* the same pipeline with no guard

on a pure-predict stream (frozen baseline model: no drifts, no
reconstruction — the worst case for relative overhead, since the only
per-chunk work is the vectorized scoring the guard's cleanliness screen
rides on top of).

Two entry points:

* pytest-benchmark (regression tracking)::

      PYTHONPATH=src python -m pytest benchmarks/bench_guard_overhead.py --benchmark-only

* standalone smoke check for CI (no pytest needed; exits non-zero when
  the overhead bound is violated)::

      PYTHONPATH=src python benchmarks/bench_guard_overhead.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, List

import numpy as np

from repro.core.pipeline import NoDetectionPipeline
from repro.datasets import DataStream
from repro.guard import RuntimeGuard
from repro.oselm import MultiInstanceModel
from repro.telemetry import configure

#: Relative wall-time overhead allowed for a guard on a clean stream.
OVERHEAD_BOUND = 0.05

D, H, C = 128, 22, 2


def make_fixture(n_samples: int = 8192, seed: int = 0):
    """A frozen baseline pipeline + a clean pure-predict stream."""
    rng = np.random.default_rng(seed)
    X0 = rng.random((80, D))
    y0 = (np.arange(80) % C).astype(np.int64)
    model = MultiInstanceModel(D, H, C, seed=seed).fit_initial(X0, y0)
    X = rng.random((n_samples, D))
    y = (rng.random(n_samples) < 0.5).astype(np.int64)
    stream = DataStream(X, y, name="bench")
    return model, stream, X0


def unguarded_run(model, stream):
    return NoDetectionPipeline(model).run(stream)


def guarded_run(model, stream, X0):
    pipe = NoDetectionPipeline(model)
    pipe.attach_guard(RuntimeGuard.from_init_data(X0))
    return pipe.run(stream)


# --------------------------------------------------------------------------
# pytest-benchmark entry points
# --------------------------------------------------------------------------


def test_unguarded_baseline(benchmark):
    """Reference: the plain pipeline (what 'zero overhead' means)."""
    model, stream, _ = make_fixture()
    benchmark(lambda: unguarded_run(model, stream))


def test_guarded_clean_stream(benchmark):
    """The guarded fast path — must track the unguarded baseline."""
    model, stream, X0 = make_fixture()
    benchmark(lambda: guarded_run(model, stream, X0))


def test_overhead_within_bound():
    """Plain assertion (runs in the default suite, no --benchmark-only)."""
    ratios = []
    for _ in range(3):  # re-measure on noise: any clean attempt passes
        ratios.append(measure_overhead(n_samples=4096, rounds=7))
        if ratios[-1] < OVERHEAD_BOUND:
            return
    joined = ", ".join(f"{r:+.2%}" for r in ratios)
    raise AssertionError(
        f"clean-stream guard overhead exceeded {OVERHEAD_BOUND:.0%} in every "
        f"attempt: {joined}"
    )


# --------------------------------------------------------------------------
# Standalone smoke mode (CI)
# --------------------------------------------------------------------------


def _best_seconds(fn: Callable[[], object], rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_overhead(*, n_samples: int, rounds: int) -> float:
    """Best-of-``rounds`` relative overhead of the guarded run.

    The two variants are timed in interleaved rounds (A/B, A/B, ...) so
    slow drift of the host (thermal, noisy neighbours) cancels out of the
    best-of comparison; a warm-up round primes caches and allocators.
    """
    configure(enabled=False, sinks=[], reset=True)
    model, stream, X0 = make_fixture(n_samples=n_samples)

    def guarded():
        return guarded_run(model, stream, X0)

    def plain():
        return unguarded_run(model, stream)

    # Warm-up + sanity: the guarded fast path must be byte-identical.
    a, b = guarded(), plain()
    assert a == b, "guarded and unguarded runs disagree on a clean stream"

    best_plain = float("inf")
    best_guarded = float("inf")
    for _ in range(rounds):
        best_guarded = min(best_guarded, _best_seconds(guarded, 1))
        best_plain = min(best_plain, _best_seconds(plain, 1))
    return best_guarded / best_plain - 1.0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast bounded check (CI): fewer samples/rounds")
    parser.add_argument("--samples", type=int, default=None,
                        help="stream length (default 16384; 4096 with --smoke)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timing rounds per variant (default 15; 7 with --smoke)")
    parser.add_argument("--attempts", type=int, default=3,
                        help="re-measure up to this many times before failing")
    args = parser.parse_args(argv)

    n_samples = args.samples or (4096 if args.smoke else 16384)
    rounds = args.rounds or (7 if args.smoke else 15)

    ratio = float("inf")
    for attempt in range(1, args.attempts + 1):
        ratio = measure_overhead(n_samples=n_samples, rounds=rounds)
        print(
            f"attempt {attempt}: clean-stream guard overhead {ratio:+.2%} "
            f"(bound {OVERHEAD_BOUND:.0%}, {n_samples} samples, "
            f"best of {rounds})"
        )
        if ratio < OVERHEAD_BOUND:
            print("OK: the guard is free when the stream is clean.")
            return 0
    print(f"FAIL: overhead {ratio:+.2%} exceeds {OVERHEAD_BOUND:.0%}.")
    return 1


if __name__ == "__main__":
    sys.exit(main())
