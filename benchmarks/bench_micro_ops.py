"""Micro-benchmarks of the primitive operations the paper's cost story
rests on — host-side throughput for each per-sample kernel.

These are classic pytest-benchmark measurements (many rounds), useful for
tracking performance regressions of the library itself: the rank-1 OS-ELM
update, autoencoder scoring, Quant Tree assignment, SPLL statistic, ADWIN
insertion, and the full proposed per-sample step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CentroidSet, SequentialDriftDetector
from repro.detectors import ADWIN, QuantTreePartition, spll_statistic
from repro.oselm import OSELM, MultiInstanceModel

RNG = np.random.default_rng(0)
D, H, C = 511, 22, 2


@pytest.fixture(scope="module")
def fan_model():
    X = RNG.random((60, D))
    y = (np.arange(60) % C).astype(np.int64)
    return MultiInstanceModel(D, H, C, seed=0).fit_initial(X, y)


def test_oselm_rank1_update(benchmark):
    m = OSELM(D, H, D, seed=0)
    X0 = RNG.random((40, D))
    m.fit_initial(X0, X0)
    x = RNG.random(D)
    benchmark(lambda: m.partial_fit_one(x, x))


def test_autoencoder_score_one(benchmark, fan_model):
    x = RNG.random(D)
    benchmark(lambda: fan_model.instances[0].score_one(x))


def test_label_prediction(benchmark, fan_model):
    """Algorithm 1 line 6 at fan dimensionality."""
    x = RNG.random(D)
    benchmark(lambda: fan_model.predict_with_score(x))


def test_proposed_per_sample_step(benchmark, fan_model):
    """Prediction + detector update — the steady-state per-sample cost."""
    cents = CentroidSet(RNG.random((C, D)), np.array([100, 100]))
    det = SequentialDriftDetector(
        cents, window_size=10**9, theta_error=0.0, theta_drift=1e18
    )
    x = RNG.random(D)

    def step():
        c, err = fan_model.predict_with_score(x)
        det.update(x, c, err)

    benchmark(step)


def test_quanttree_assignment(benchmark):
    part = QuantTreePartition(16, seed=0).fit(RNG.random((400, D)))
    batch = RNG.random((235, D))
    benchmark(lambda: part.counts(batch))


def test_spll_statistic(benchmark):
    means = RNG.random((3, D))
    cov = np.ones(D)
    batch = RNG.random((235, D))
    benchmark(lambda: spll_statistic(means, cov, batch, diag=True))


def test_adwin_insert(benchmark):
    ad = ADWIN()
    values = iter(RNG.random(10**7))
    benchmark(lambda: ad.update(float(next(values))))


def test_batch_scoring_vectorised(benchmark, fan_model):
    """Vectorised batch path (evaluation harness) for contrast with the
    per-sample path above."""
    X = RNG.random((235, D))
    benchmark(lambda: fan_model.scores(X))
