"""Table 2 — accuracy (%) and detection delay on the NSL-KDD-like stream.

Reproduces the paper's five-method comparison (plus the proposed method's
three window sizes) at full stream size (22 701 test samples, drift at
8 333) and checks the paper's qualitative claims:

* active methods beat the frozen baseline, which beats ONLAD;
* the proposed method's accuracy is within a few points of the batch
  detectors while detecting more slowly;
* delay is reported per configuration alongside the paper's numbers.
"""

from __future__ import annotations

from repro.core import build_proposed
from repro.metrics import format_table

PAPER_TABLE2 = {
    "Quant Tree": (96.8, 296),
    "SPLL": (96.3, 296),
    "Baseline (no concept drift detection)": (83.5, None),
    "ONLAD": (65.7, None),
    "Proposed method (Window size = 100)": (96.0, 843),
    "Proposed method (Window size = 250)": (95.5, 993),
    "Proposed method (Window size = 1000)": (92.5, 1263),
}

DRIFT_AT = 8333


def test_table2_reproduction(nslkdd_results, record_table, benchmark):
    """Assemble and check Table 2 from the cached full-stream runs."""

    def summarize():
        rows = []
        for name, paper in PAPER_TABLE2.items():
            res = nslkdd_results[name]
            delay = res.first_delay
            rows.append([
                name,
                round(100 * res.accuracy, 1),
                paper[0],
                delay,
                paper[1],
            ])
        return rows

    rows = benchmark(summarize)
    record_table(format_table(
        ["method", "acc %", "paper acc %", "delay", "paper delay"],
        rows,
        title="TABLE 2: accuracy and drift-detection delay (NSL-KDD-like)",
    ))

    acc = {name: nslkdd_results[name].accuracy for name in PAPER_TABLE2}
    baseline = acc["Baseline (no concept drift detection)"]
    onlad = acc["ONLAD"]
    proposed = acc["Proposed method (Window size = 100)"]
    batch_best = max(acc["Quant Tree"], acc["SPLL"])

    # Paper shape: proposed ≫ baseline > ONLAD; proposed within a few
    # points of the batch detectors.
    assert proposed > baseline
    assert baseline > onlad
    assert proposed > batch_best - 0.08


def test_batch_methods_detect_faster(nslkdd_results, benchmark):
    """Paper §5.1: the proposed method 'needed more samples to detect the
    concept drift compared to the batch-based Quant Tree and SPLL'."""

    def delays():
        return {
            name: res.first_delay for name, res in nslkdd_results.items()
            if res.first_delay is not None
        }

    d = benchmark(delays)
    batch = min(d["Quant Tree"], d["SPLL"])
    for name, delay in d.items():
        if name.startswith("Proposed"):
            assert delay >= batch, (name, delay, batch)


def test_proposed_window_size_accuracy_tradeoff(nslkdd_results, benchmark):
    """Paper Table 2: accuracy decreases as the window grows (W=1000 is
    the weakest proposed configuration)."""

    def accs():
        return [
            nslkdd_results[f"Proposed method (Window size = {w})"].accuracy
            for w in (100, 250, 1000)
        ]

    a100, a250, a1000 = benchmark(accs)
    assert a1000 <= max(a100, a250)


def test_proposed_pipeline_throughput(nslkdd_streams, benchmark):
    """Wall-clock benchmark: streaming 2 000 samples through the proposed
    pipeline (the paper's per-sample latency object, host-side)."""
    train, test = nslkdd_streams
    sub = test.slice(0, 2000)

    def run():
        pipe = build_proposed(train.X, train.y, window_size=100, seed=2)
        return pipe.run(sub)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(records) == 2000
