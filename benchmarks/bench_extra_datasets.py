"""Extension — the proposed detector on additional drift benchmarks.

The paper's closing line: "We are also planning to evaluate the proposed
method with more concept drift datasets." This bench does exactly that
with the classic generators in :mod:`repro.datasets.benchmarks` — SEA
concepts (sudden, 3 drifts), the rotating hyperplane (incremental real
drift), and the moving-prototype RBF stream (incremental covariate
drift) — reporting detection delay and false positives per stream.
"""

from __future__ import annotations

import pytest

from repro.core import build_proposed
from repro.datasets import (
    MinMaxScaler,
    DataStream,
    make_hyperplane_stream,
    make_rbf_drift_stream,
    make_sea_stream,
)
from repro.metrics import detection_delay, evaluate_method, format_table


def scaled_split(stream: DataStream, n_train: int):
    """Split off a training prefix and min-max-scale both parts with the
    training statistics (the on-device preprocessing contract)."""
    scaler = MinMaxScaler().fit(stream.X[:n_train])
    train = DataStream(
        scaler.transform(stream.X[:n_train]), stream.y[:n_train], name="train"
    )
    rest = stream.slice(n_train)
    test = DataStream(
        scaler.transform(rest.X), rest.y, drift_points=rest.drift_points, name="test"
    )
    return train, test


@pytest.fixture(scope="module")
def results():
    out = {}
    sea = make_sea_stream(1500, noise=0.0, seed=0)
    train, test = scaled_split(sea, 700)
    pipe = build_proposed(train.X, train.y, window_size=100, seed=1)
    out["SEA (3 sudden drifts)"] = (evaluate_method(pipe, test), test)

    rbf = make_rbf_drift_stream(7000, 8, 4, drift_start=2500, velocity=1.5e-3, seed=0)
    train, test = scaled_split(rbf, 1200)
    pipe = build_proposed(train.X, train.y, window_size=100, seed=1)
    out["RBF moving prototypes"] = (evaluate_method(pipe, test), test)

    hyp = make_hyperplane_stream(7000, 10, drift_start=2500,
                                 rotation_per_step=2e-3, seed=0)
    train, test = scaled_split(hyp, 1200)
    pipe = build_proposed(train.X, train.y, window_size=100, seed=1)
    out["Rotating hyperplane (real drift)"] = (evaluate_method(pipe, test), test)
    return out


def test_extra_datasets_table(results, record_table, benchmark):
    def rows():
        out = []
        for name, (res, test) in results.items():
            first = test.drift_points[0] if test.drift_points else None
            delay = detection_delay(res.delay.detections, first) if first else None
            out.append([
                name, len(test), str(test.drift_points), delay,
                len(res.delay.false_positives),
            ])
        return out

    record_table(format_table(
        ["stream", "samples", "true drifts", "delay (first)", "false pos."],
        benchmark(rows),
        title="EXTENSION: proposed detector on classic drift benchmarks (paper future work)",
    ))


def test_detects_covariate_drifts(results, benchmark):
    """SEA's threshold drifts are label-only (covariate distribution is
    i.i.d. uniform!) — a distribution-based detector must NOT fire on
    them; the RBF prototype motion IS a covariate drift and must be
    caught."""
    out = benchmark(lambda: {
        name: (res.delay.detections, test.drift_points)
        for name, (res, test) in results.items()
    })
    rbf_det, rbf_drifts = out["RBF moving prototypes"]
    assert any(d >= rbf_drifts[0] for d in rbf_det)


def test_sea_label_drift_invisible_to_covariate_detector(results, benchmark):
    """A structural negative control: SEA features never change
    distribution, so the (unsupervised, input-space) proposed detector
    stays quiet — detecting SEA requires label feedback."""
    res, test = benchmark(lambda: results["SEA (3 sudden drifts)"])
    assert res.delay.detections == ()


def test_no_rampant_false_positives(results, benchmark):
    out = benchmark(lambda: {
        name: len(res.delay.false_positives) for name, (res, _) in results.items()
    })
    assert all(v <= 2 for v in out.values())
