"""Append-only perf trajectory shared by every standalone bench.

Each bench's ``main`` appends one JSON line to ``BENCH_history.jsonl``
after a successful run::

    {"bench": "fleet", "mode": "smoke", "git_sha": "4a36266",
     "host": "ci-runner", "ts": 1754640000.0,
     "metrics": {"samples_per_sec": 6376.1, ...}}

``tools/check_bench_regression.py`` reads the same file and fails CI
when the latest smoke entry regresses more than 20 % against the
trailing median — the history file is the contract between the two.
Records are append-only and self-describing (schema above) so the file
survives bench renames and metric additions; readers must ignore
metrics they do not know.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path

__all__ = ["DEFAULT_HISTORY", "append_history", "git_sha"]

#: Where benches append by default (repo root, next to BENCH_*.json).
DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_history.jsonl"


def git_sha() -> str:
    """Short commit hash of the repo this bench ran in ("unknown" outside git)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def append_history(path, bench: str, mode: str, metrics: dict) -> dict:
    """Append one trajectory record to ``path`` and return it.

    ``metrics`` values must be numeric; non-finite values are rejected by
    the regression gate, not here (the record should faithfully show what
    the bench measured).
    """
    record = {
        "bench": str(bench),
        "mode": str(mode),
        "git_sha": git_sha(),
        "host": platform.node() or "unknown",
        "ts": time.time(),
        "metrics": {k: float(v) for k, v in metrics.items()},
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record
