"""Ablation — supervised error-rate detectors vs the unsupervised proposal.

§2.2.2 dismisses error-rate methods (DDM, ADWIN) for edge devices because
they "need a labeled teacher dataset". This bench quantifies what that
label access buys: every error-rate detector (plus their voting ensemble)
runs through :class:`ErrorRatePipeline` with oracle labels on the reduced
NSL-KDD stream, against the unsupervised proposed method. The supervised
methods are an upper bound the proposal approaches without labels.
"""

from __future__ import annotations

import pytest

from repro.core import CentroidSet, ErrorRatePipeline, ModelReconstructor, build_model, build_proposed
from repro.datasets import NSLKDDConfig, make_nslkdd_like
from repro.detectors import ADWIN, DDM, EDDM, KSWIN, PageHinkley, VotingDetectorEnsemble
from repro.metrics import evaluate_method, format_table

DRIFT_AT = 2000


@pytest.fixture(scope="module")
def streams():
    cfg = NSLKDDConfig(n_train=800, n_test=7000, drift_at=DRIFT_AT)
    return make_nslkdd_like(cfg, seed=0)


def build_error_rate(streams, detector, name):
    train, _ = streams
    model = build_model(train.X, train.y, seed=1)
    cents = CentroidSet.from_labelled_data(train.X, train.y, 2)
    rec = ModelReconstructor(model, cents, n_total=400)
    return ErrorRatePipeline(model, detector, rec, name=name)


@pytest.fixture(scope="module")
def results(streams):
    train, test = streams
    detectors = {
        "DDM (supervised)": DDM(),
        "EDDM (supervised)": EDDM(),
        "ADWIN (supervised)": ADWIN(),
        "Page-Hinkley (supervised)": PageHinkley(threshold=20.0),
        "KSWIN (supervised)": KSWIN(seed=1),
        "DDM+PH ensemble (supervised)": VotingDetectorEnsemble(
            [DDM(), PageHinkley(threshold=20.0)], policy="majority"
        ),
    }
    out = {}
    for name, det in detectors.items():
        out[name] = evaluate_method(build_error_rate(streams, det, name), test)
    out["Proposed (unsupervised)"] = evaluate_method(
        build_proposed(train.X, train.y, window_size=100, seed=1), test
    )
    return out


def test_error_rate_comparison_table(results, record_table, benchmark):
    def rows():
        return [
            [name, round(100 * res.accuracy, 1), res.first_delay,
             len(res.delay.false_positives)]
            for name, res in results.items()
        ]

    record_table(format_table(
        ["method", "accuracy %", "delay", "false positives"],
        benchmark(rows),
        title="ABLATION: supervised error-rate detectors vs the unsupervised proposal",
    ))


def test_proposed_close_to_supervised_upper_bound(results, benchmark):
    accs = benchmark(lambda: {k: v.accuracy for k, v in results.items()})
    supervised_best = max(v for k, v in accs.items() if "supervised" in k)
    assert accs["Proposed (unsupervised)"] > supervised_best - 0.06


def test_at_least_one_supervised_method_detects(results, benchmark):
    delays = benchmark(lambda: {k: v.first_delay for k, v in results.items()})
    assert any(
        d is not None for k, d in delays.items() if "supervised" in k
    )


def test_proposed_detects_without_labels(results, benchmark):
    res = benchmark(lambda: results["Proposed (unsupervised)"])
    assert res.first_delay is not None
