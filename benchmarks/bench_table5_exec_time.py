"""Table 5 — execution time for the 700-sample fan stream (Raspberry Pi 4).

Each method's phase tally (which samples were predicted / checked /
reconstructed / buffered) is measured by actually running our
implementation over the stream; the tally is then priced with the
Raspberry-Pi-4 cost model. The host wall-clock of our vectorised NumPy
implementation is reported alongside for reference.

The paper's shape: SPLL is the slowest by a wide margin (its per-batch
k-means), Quant Tree ≈ proposed, the no-detection baseline is cheapest.
Our SPLL clusters with n_init=2 — a reference implementation using
sklearn defaults (n_init=10) multiplies the SPLL batch term ~5×, which we
show as a second SPLL row.
"""

from __future__ import annotations

import pytest

from repro.datasets import make_cooling_fan_like
from repro.device import (
    RASPBERRY_PI_4,
    StageCostModel,
    estimate_stream_seconds,
    quanttree_batch_ops,
    spll_batch_ops,
)
from repro.metrics import format_table, make_grid

PAPER_TABLE5 = {
    "Quant Tree": 1.52,
    "SPLL": 9.28,
    "Baseline (no concept drift detection)": 1.05,
    "Proposed method": 1.50,
}

GEOMETRY = StageCostModel(2, 511, 22)
BATCH = 235

#: (batch_ops, n_batches) are applied after the run; per-sample phases come
#: from the measured tallies, so the cells themselves are pure grid cells.
FAN_STREAM = {"fan": ("coolingfan", {"scenario": "sudden", "n_modes": 2, "seed": 0})}
TABLE5_METHODS = {
    "Quant Tree": ("quanttree", {"batch_size": BATCH, "n_bins": 16}),
    "SPLL": ("spll", {"batch_size": BATCH}),
    "Baseline (no concept drift detection)": ("baseline", {}),
    "Proposed method": ("proposed", {"window_size": 50}),
}


@pytest.fixture(scope="module")
def fan_streams():
    return make_cooling_fan_like("sudden", n_modes=2, seed=0)


@pytest.fixture(scope="module")
def table5_rows(fan_streams, grid_runner):
    _, test = fan_streams
    n_batches = len(test) // BATCH
    batch_terms = {
        "Quant Tree": (quanttree_batch_ops(BATCH, 16), n_batches),
        "SPLL": (spll_batch_ops(BATCH, 511, 3), n_batches),
    }
    cells = make_grid(TABLE5_METHODS, FAN_STREAM, seeds=[1])
    rows = {}
    for cell_result in grid_runner.run(cells):
        res = cell_result.to_method_result()
        batch_ops, nb = batch_terms.get(res.name, (None, 0))
        est = estimate_stream_seconds(
            res.phase_tally, GEOMETRY, RASPBERRY_PI_4,
            per_batch_ops=batch_ops, n_batches=nb,
        )
        rows[res.name] = (est, res.wall_seconds, res.phase_tally)
    # Reference-implementation SPLL (sklearn-default k-means: n_init=10,
    # effectively ~25 Lloyd iterations on this data).
    res = rows["SPLL"]
    sk_ops = spll_batch_ops(BATCH, 511, 3, kmeans_iters=25, kmeans_restarts=10)
    rows["SPLL (sklearn-default k-means)"] = (
        estimate_stream_seconds(res[2], GEOMETRY, RASPBERRY_PI_4,
                                per_batch_ops=sk_ops, n_batches=n_batches),
        res[1],
        res[2],
    )
    return rows


def test_table5_reproduction(table5_rows, record_table, benchmark):
    def assemble():
        out = []
        for name, (est, wall, _) in table5_rows.items():
            paper = PAPER_TABLE5.get(name)
            out.append([name, round(est, 2), paper, round(wall, 2)])
        return out

    rows = benchmark(assemble)
    record_table(format_table(
        ["method", "estimated Pi4 s", "paper s", "host wall s"],
        rows,
        title="TABLE 5: execution time, 700-sample fan stream on Raspberry Pi 4",
    ))


def test_method_ordering_matches_paper(table5_rows, benchmark):
    est = benchmark(lambda: {k: v[0] for k, v in table5_rows.items()})
    base = est["Baseline (no concept drift detection)"]
    assert est["SPLL"] > est["Quant Tree"]          # SPLL slowest
    assert est["SPLL"] > est["Proposed method"]
    assert est["Proposed method"] > base            # detection costs something
    assert est["Quant Tree"] > base
    # Proposed ≈ Quant Tree (paper: 1.50 vs 1.52).
    assert abs(est["Proposed method"] - est["Quant Tree"]) < 0.5 * base


def test_baseline_estimate_matches_paper(table5_rows, benchmark):
    """The Pi-4 profile is calibrated on this row: 700 predictions ≈ 1.05 s."""
    est = benchmark(lambda: table5_rows["Baseline (no concept drift detection)"][0])
    assert est == pytest.approx(1.05, rel=0.15)


def test_host_wall_clock_ordering(table5_rows, benchmark):
    """Even our vectorised implementations keep the SPLL > QT ≥ baseline
    ordering in real wall-clock terms."""
    wall = benchmark(lambda: {k: v[1] for k, v in table5_rows.items()})
    assert wall["SPLL"] > wall["Baseline (no concept drift detection)"]
    assert wall["Quant Tree"] > wall["Baseline (no concept drift detection)"]
