"""Ablation — the distribution-based detector family side by side.

Quant Tree and SPLL are the paper's batch baselines; HDDDM (Hellinger
distance) completes the classic trio. This bench runs all three — plus
the proposed sequential detector — on the reduced NSL-KDD stream and
reports accuracy, delay, false positives, and the resident detector
memory, making the batch-vs-sequential trade-off explicit in one table.
"""

from __future__ import annotations

import pytest

from repro.core import (
    build_hdddm_pipeline,
    build_proposed,
    build_quanttree_pipeline,
    build_spll_pipeline,
)
from repro.datasets import NSLKDDConfig, make_nslkdd_like
from repro.metrics import evaluate_method, format_table

DRIFT_AT = 2000
BATCH = 300


@pytest.fixture(scope="module")
def results():
    cfg = NSLKDDConfig(n_train=800, n_test=7000, drift_at=DRIFT_AT)
    train, test = make_nslkdd_like(cfg, seed=0)
    builders = {
        "Quant Tree (batch)": lambda: build_quanttree_pipeline(
            train.X, train.y, batch_size=BATCH, n_bins=32, seed=1
        ),
        "SPLL (batch)": lambda: build_spll_pipeline(
            train.X, train.y, batch_size=BATCH, seed=1
        ),
        "HDDDM (batch)": lambda: build_hdddm_pipeline(
            train.X, train.y, batch_size=BATCH, seed=1
        ),
        "Proposed (sequential)": lambda: build_proposed(
            train.X, train.y, window_size=100, seed=1
        ),
    }
    return {name: evaluate_method(b(), test, name=name) for name, b in builders.items()}


def test_batch_family_table(results, record_table, benchmark):
    def rows():
        return [
            [name, round(100 * res.accuracy, 1), res.first_delay,
             len(res.delay.false_positives), round(res.detector_nbytes / 1000, 1)]
            for name, res in results.items()
        ]

    record_table(format_table(
        ["method", "accuracy %", "delay", "false pos.", "detector kB"],
        benchmark(rows),
        title="ABLATION: distribution-based detector family (batch) vs the sequential proposal",
    ))


def test_all_batch_detectors_beat_no_adaptation(results, benchmark):
    accs = benchmark(lambda: {k: v.accuracy for k, v in results.items()})
    # Everyone adapts, so everyone should clear 85% on this stream.
    assert all(a > 0.85 for a in accs.values())


def test_sequential_memory_far_below_batch(results, benchmark):
    mems = benchmark(lambda: {k: v.detector_nbytes for k, v in results.items()})
    seq = mems["Proposed (sequential)"]
    for name, m in mems.items():
        if "batch" in name:
            assert seq < m / 10, name


def test_hdddm_detects_the_drift(results, benchmark):
    res = benchmark(lambda: results["HDDDM (batch)"])
    assert res.first_delay is not None
