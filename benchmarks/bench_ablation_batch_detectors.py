"""Ablation — the distribution-based detector family side by side.

Quant Tree and SPLL are the paper's batch baselines; HDDDM (Hellinger
distance) completes the classic trio. This bench runs all three — plus
the proposed sequential detector — on the reduced NSL-KDD stream and
reports accuracy, delay, false positives, and the resident detector
memory, making the batch-vs-sequential trade-off explicit in one table.

The cells are declarative: each is an :class:`repro.engine.ExperimentSpec`
resolved through the pipeline/dataset registries and executed by the grid
runner's :func:`repro.metrics.parallel.run_cell`, so every row here is
reproducible from its spec alone (same cells the CLI and the parallel
runner would build).
"""

from __future__ import annotations

import pytest

from repro.engine import ExperimentSpec
from repro.metrics import format_table
from repro.metrics.parallel import run_cell

DRIFT_AT = 2000
BATCH = 300

_NSLKDD = {"n_train": 800, "n_test": 7000, "drift_at": DRIFT_AT}


def _cell(name: str, pipeline: str, **pipeline_kwargs) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        pipeline=pipeline,
        dataset="nslkdd",
        seed=0,
        model_seed=1,
        pipeline_kwargs=pipeline_kwargs,
        dataset_kwargs=_NSLKDD,
    )


SPECS = (
    _cell("Quant Tree (batch)", "quanttree", batch_size=BATCH, n_bins=32),
    _cell("SPLL (batch)", "spll", batch_size=BATCH),
    _cell("HDDDM (batch)", "hdddm", batch_size=BATCH),
    _cell("Proposed (sequential)", "proposed", window_size=100),
)


@pytest.fixture(scope="module")
def results():
    return {spec.name: run_cell(spec) for spec in SPECS}


def test_batch_family_table(results, record_table, benchmark):
    def rows():
        return [
            [name, round(100 * res.accuracy, 1), res.first_delay,
             len(res.false_positives), round(res.detector_nbytes / 1000, 1)]
            for name, res in results.items()
        ]

    record_table(format_table(
        ["method", "accuracy %", "delay", "false pos.", "detector kB"],
        benchmark(rows),
        title="ABLATION: distribution-based detector family (batch) vs the sequential proposal",
    ))


def test_all_batch_detectors_beat_no_adaptation(results, benchmark):
    accs = benchmark(lambda: {k: v.accuracy for k, v in results.items()})
    # Everyone adapts, so everyone should clear 85% on this stream.
    assert all(a > 0.85 for a in accs.values())


def test_sequential_memory_far_below_batch(results, benchmark):
    mems = benchmark(lambda: {k: v.detector_nbytes for k, v in results.items()})
    seq = mems["Proposed (sequential)"]
    for name, m in mems.items():
        if "batch" in name:
            assert seq < m / 10, name


def test_hdddm_detects_the_drift(results, benchmark):
    res = benchmark(lambda: results["HDDDM (batch)"])
    assert res.first_delay is not None
