"""Ablation — the Eq. 1 threshold multiplier ``z``.

The paper fixes ``z = 1`` and notes that "a manual tuning of the threshold
value can shorten the detection delay" (§5.1). This bench sweeps ``z`` on
the reduced NSL-KDD stream and quantifies the delay / false-positive
trade-off: smaller ``z`` → faster detection but eventual false alarms,
larger ``z`` → slower or missed detection.
"""

from __future__ import annotations

import pytest

from repro.core import build_proposed
from repro.datasets import NSLKDDConfig, make_nslkdd_like
from repro.metrics import evaluate_method, format_table

ZS = (0.25, 0.5, 1.0, 2.0, 4.0)
DRIFT_AT = 2500


@pytest.fixture(scope="module")
def sweep():
    cfg = NSLKDDConfig(n_train=800, n_test=8000, drift_at=DRIFT_AT)
    train, test = make_nslkdd_like(cfg, seed=0)
    out = {}
    for z in ZS:
        pipe = build_proposed(train.X, train.y, window_size=100, z=z, seed=1)
        res = evaluate_method(pipe, test)
        out[z] = (
            res.first_delay,
            len(res.delay.false_positives),
            res.accuracy,
            pipe.detector.theta_drift,
        )
    return out


def test_z_sweep_table(sweep, record_table, benchmark):
    def rows():
        return [
            [f"z = {z}", round(sweep[z][3], 3), sweep[z][0], sweep[z][1],
             round(100 * sweep[z][2], 1)]
            for z in ZS
        ]

    record_table(format_table(
        ["setting", "theta_drift", "delay", "false positives", "accuracy %"],
        benchmark(rows),
        title="ABLATION: Eq. 1 threshold multiplier z (paper fixes z = 1)",
    ))


def test_threshold_monotone_in_z(sweep, benchmark):
    thetas = benchmark(lambda: [sweep[z][3] for z in ZS])
    assert all(a < b for a, b in zip(thetas, thetas[1:]))


def test_manual_tuning_can_shorten_delay(sweep, benchmark):
    """Paper §5.1's remark: a lower threshold detects earlier."""
    delays = benchmark(lambda: {z: sweep[z][0] for z in ZS})
    detected = {z: d for z, d in delays.items() if d is not None}
    assert 1.0 in detected
    faster = [z for z, d in detected.items() if z < 1.0 and d <= detected[1.0]]
    assert faster, "no smaller z detected at least as fast as z=1"


def test_large_z_slower_or_missed(sweep, benchmark):
    delays = benchmark(lambda: {z: sweep[z][0] for z in ZS})
    d4 = delays[4.0]
    assert d4 is None or d4 >= delays[1.0]
