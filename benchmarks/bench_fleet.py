"""Fleet benchmark: multiplexing throughput under LRU evict/restore churn.

The fleet's acceptance scenario is a 1000-device soak through one
:class:`repro.fleet.FleetManager` with LRU capacity 64 — far more
devices than resident slots, so the manager spends the whole run
spooling sessions to checkpoints and lazily restoring them. The bench
reports sessions/sec and samples/sec, the eviction/restore counts, mean
restore latency, and the byte-identity verdict for a sample of devices,
and writes everything to ``BENCH_fleet.json``.

Two entry points:

* pytest-benchmark (regression tracking)::

      PYTHONPATH=src python -m pytest benchmarks/bench_fleet.py --benchmark-only

* standalone run for CI / the acceptance soak (no pytest needed; exits
  non-zero if any sampled device's records diverge from its standalone
  run)::

      PYTHONPATH=src python benchmarks/bench_fleet.py --smoke   # 24 devices
      PYTHONPATH=src python benchmarks/bench_fleet.py           # 1000 devices
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.fleet import run_fleet_soak

#: The acceptance-scale soak (full mode).
FULL = dict(n_devices=1000, capacity=64, n_test=120, feed_chunk=60, verify=8)
#: CI smoke: same churn shape (devices >> capacity), seconds not minutes.
SMOKE = dict(n_devices=24, capacity=4, n_test=120, feed_chunk=60, verify=8)

#: Shape-homogeneous resident fleets (devices == capacity, shared
#: model_seed) for the batched-vs-sequential A/B: no LRU churn, so the
#: measured ratio is the scoring path itself.
FULL_AB = dict(n_devices=64, capacity=64, n_test=240, feed_chunk=60, verify=0)
SMOKE_AB = dict(n_devices=12, capacity=12, n_test=120, feed_chunk=60, verify=0)


def run_soak(
    params: dict, *, seed: int = 0, n_shards=None, batch_scoring=False,
    supervise=None, chaos=None, progress=None,
):
    with tempfile.TemporaryDirectory(prefix="repro-fleet-bench-") as tmp:
        return run_fleet_soak(
            params["n_devices"],
            params["capacity"],
            spool_dir=tmp,
            seed=seed,
            n_test=params["n_test"],
            feed_chunk=params["feed_chunk"],
            n_shards=n_shards,
            batch_scoring=batch_scoring,
            supervise=supervise,
            chaos=chaos,
            verify=params["verify"],
            progress=progress,
        )


def homogeneous_ab(params: dict, *, seed: int = 0) -> dict:
    """Sequential-vs-batched samples/sec on a resident homogeneous fleet."""
    sequential = run_soak(params, seed=seed, batch_scoring=False)
    batched = run_soak(params, seed=seed, batch_scoring=True)
    speedup = (
        batched.samples_per_sec / sequential.samples_per_sec
        if sequential.samples_per_sec > 0
        else 0.0
    )
    return {
        "n_devices": params["n_devices"],
        "capacity": params["capacity"],
        "sequential_samples_per_sec": sequential.samples_per_sec,
        "batched_samples_per_sec": batched.samples_per_sec,
        "batch_groups": batched.batch_groups,
        "batched_samples": batched.batched_samples,
        "fallback_samples": batched.fallback_samples,
        "speedup": speedup,
    }


# --------------------------------------------------------------------------
# pytest-benchmark entry points
# --------------------------------------------------------------------------


def test_fleet_churn_throughput(benchmark):
    """Wall time of a small high-churn soak (verification excluded)."""
    params = dict(SMOKE, verify=0)
    report = benchmark(lambda: run_soak(params))
    assert report.evictions > 0 and report.restores > 0


# --------------------------------------------------------------------------
# standalone entry point
# --------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="24-device / capacity-4 variant for CI (same churn shape)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition the fleet over N worker processes "
             "(ShardedFleetManager; default: one in-process manager)",
    )
    parser.add_argument(
        "--batch-scoring", action="store_true",
        help="run the soak through the cross-session batched scoring "
             "path and add a sequential-vs-batched A/B on a resident "
             "shape-homogeneous fleet",
    )
    parser.add_argument(
        "--chaos", type=int, default=None, metavar="N",
        help="supervised chaos soak: inject N seeded faults "
             "(kill/hang/corrupt) and record recovery metrics "
             "(respawns, replayed samples, recovery seconds); "
             "requires --shards",
    )
    parser.add_argument(
        "--out",
        default="BENCH_fleet.json",
        help="where to write the JSON report (default: ./BENCH_fleet.json)",
    )
    parser.add_argument(
        "--history", default=None, metavar="PATH",
        help="perf-trajectory JSONL to append to "
             "(default: ./BENCH_history.jsonl at the repo root)",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip the trajectory append (exploratory runs)",
    )
    args = parser.parse_args(argv)
    params = SMOKE if args.smoke else FULL
    sharded = args.shards is not None and args.shards > 0

    supervise = None
    if args.chaos is not None:
        from repro.fleet import SupervisorConfig

        if not sharded:
            parser.error("--chaos requires --shards N (faults hit workers)")
        # A tight deadline keeps hang-escalation fast in CI; the chaos
        # hang sleeps 4x this, so it is always caught, never waited out.
        supervise = SupervisorConfig(request_timeout=2.0, seed=args.seed)

    shard_note = f", {args.shards} shards" if sharded else ""
    chaos_note = f", {args.chaos} chaos events" if args.chaos is not None else ""
    print(
        f"fleet soak: {params['n_devices']} devices, "
        f"capacity {params['capacity']}, {params['n_test']} samples/device"
        f"{shard_note}{chaos_note}"
    )
    report = run_soak(
        params,
        seed=args.seed,
        n_shards=args.shards if sharded else None,
        batch_scoring=args.batch_scoring,
        supervise=supervise,
        chaos=args.chaos,
        progress=print,
    )
    mode = "smoke" if args.smoke else "full"
    if sharded:
        mode += f"-sharded{args.shards}"
    if args.batch_scoring:
        mode += "-batched"
    if args.chaos is not None:
        mode += "-chaos"
    data = report.to_json()
    data["mode"] = mode
    data["seed"] = args.seed

    ab = None
    if args.batch_scoring:
        ab_params = SMOKE_AB if args.smoke else FULL_AB
        print(
            f"homogeneous A/B: {ab_params['n_devices']} resident devices, "
            "sequential vs batched"
        )
        ab = homogeneous_ab(ab_params, seed=args.seed)
        data["homogeneous_ab"] = ab
        print(
            f"  sequential {ab['sequential_samples_per_sec']:.0f} samples/s, "
            f"batched {ab['batched_samples_per_sec']:.0f} samples/s "
            f"-> {ab['speedup']:.2f}x"
        )

    Path(args.out).write_text(json.dumps(data, indent=2) + "\n")
    if not args.no_history:
        from bench_history import DEFAULT_HISTORY, append_history

        metrics = {
            "samples_per_sec": report.samples_per_sec,
            "sessions_per_sec": report.sessions_per_sec,
            "evictions": report.evictions,
            "restores": report.restores,
            "drifts": report.drifts,
        }
        if ab is not None:
            metrics["ab_batched_samples_per_sec"] = ab["batched_samples_per_sec"]
            metrics["ab_speedup"] = ab["speedup"]
        if supervise is not None:
            metrics["respawns"] = report.respawns
            metrics["replayed_samples"] = report.replayed_samples
            metrics["recovery_seconds"] = report.recovery_seconds
        append_history(args.history or DEFAULT_HISTORY, "fleet", mode, metrics)

    print(
        f"  {report.sessions_per_sec:.1f} sessions/s, "
        f"{report.samples_per_sec:.0f} samples/s"
    )
    print(
        f"  {report.evictions} evictions, {report.restores} restores "
        f"(mean restore {data['restore_ms_mean']:.2f} ms), "
        f"max resident {report.max_resident}"
    )
    if args.batch_scoring:
        print(
            f"  {report.batched_samples} batched / "
            f"{report.fallback_samples} fallback samples "
            f"in {report.batch_groups} group GEMMs"
        )
    if supervise is not None:
        print(
            f"  chaos: {len(report.chaos_events or [])} faults, "
            f"{report.respawns} respawns, "
            f"{report.replayed_samples} samples replayed in "
            f"{report.recovery_seconds:.2f} s, "
            f"quarantined {report.quarantined}"
        )
        if report.failed_recoveries:
            print(
                f"FAIL: {report.failed_recoveries} shard(s) unrecoverable",
                file=sys.stderr,
            )
            return 1
    print(f"  report -> {args.out}")
    if report.mismatches:
        print(
            f"FAIL: fleet records diverged from standalone runs for "
            f"{report.mismatches}",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: {report.verified} sampled device(s) byte-identical to "
        "standalone runs."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
