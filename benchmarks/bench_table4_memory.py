"""Table 4 — detector memory utilisation (kB) on the fan configuration.

Byte-exact analytic accounts (D=511, batch 235, K=16, c=3, C=2) compared
against the paper's measurements, plus the §5.3 feasibility claim: the
batch methods cannot fit in the Raspberry Pi Pico's 264 kB RAM, while the
proposed method (with the OS-ELM's constant weights in flash) can.
"""

from __future__ import annotations

import pytest

from repro.device import (
    RASPBERRY_PI_PICO,
    discriminative_model_memory,
    fits_on,
    proposed_memory,
    quanttree_memory,
    spll_memory,
)
from repro.metrics import format_table

PAPER_TABLE4 = {"Quant Tree": 619, "SPLL": 1933, "Proposed method": 69}

# Paper fan configuration (§4.2): D=511 features, batch 235, 16 bins,
# SPLL clusters = 3, C = 2 labels.
CONFIG = dict(n_features=511)


def reports():
    return {
        "Quant Tree": quanttree_memory(235, 511, 16),
        "SPLL": spll_memory(235, 511, 3),
        "Proposed method": proposed_memory(2, 511),
    }


def test_table4_reproduction(record_table, benchmark):
    reps = benchmark(reports)
    rows = []
    for name, rep in reps.items():
        rows.append([
            name,
            round(rep.total_kb, 1),
            PAPER_TABLE4[name],
            "yes" if fits_on(rep, RASPBERRY_PI_PICO) else "NO",
        ])
    record_table(format_table(
        ["method", "reproduced kB", "paper kB", "fits 264 kB Pico?"],
        rows,
        title="TABLE 4: detector memory utilisation (fan config: D=511, batch=235)",
    ))

    reps = reports()
    proposed = reps["Proposed method"].total_bytes
    qt = reps["Quant Tree"].total_bytes
    spll = reps["SPLL"].total_bytes
    # Paper: proposed saves 88.9% vs Quant Tree and 96.4% vs SPLL.
    assert 1 - proposed / qt >= 0.889
    assert 1 - proposed / spll >= 0.964
    # SPLL ≈ two sample windows ≈ the paper's 1933 kB.
    assert reps["SPLL"].total_kb == pytest.approx(1933, rel=0.05)


def test_pico_feasibility(benchmark):
    def feasibility():
        model = discriminative_model_memory(2, 511, 22, alpha_in_flash=True)
        return {
            "proposed": fits_on(proposed_memory(2, 511), RASPBERRY_PI_PICO, model=model),
            "quanttree": fits_on(quanttree_memory(235, 511, 16), RASPBERRY_PI_PICO),
            "spll": fits_on(spll_memory(235, 511, 3), RASPBERRY_PI_PICO),
        }

    out = benchmark(feasibility)
    assert out == {"proposed": True, "quanttree": False, "spll": False}


def test_live_state_matches_analytic_model(benchmark):
    """The implementations' own byte counters agree with the analytic
    Table 4 accounts (within the small non-buffer terms)."""
    import numpy as np

    from repro.detectors import SPLL, QuantTree

    rng = np.random.default_rng(0)
    ref = rng.normal(size=(400, 64))

    def live():
        qt = QuantTree(batch_size=50, n_bins=16, seed=0).fit_reference(ref)
        sp = SPLL(batch_size=50, n_clusters=3, n_calibration=4, seed=0).fit_reference(ref)
        return qt.state_nbytes(), sp.state_nbytes()

    qt_live, sp_live = benchmark.pedantic(live, rounds=1, iterations=1)
    assert qt_live == pytest.approx(quanttree_memory(50, 64, 16).total_bytes, rel=0.1)
    analytic_sp = spll_memory(50, 64, 3, reference_size=400).total_bytes
    assert sp_live == pytest.approx(analytic_sp, rel=0.1)
