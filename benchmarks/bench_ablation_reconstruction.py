"""Ablation — Algorithm 2's design choices.

The reconstruction procedure has knobs the paper fixes implicitly: the
sample budget ``N``, covariance resetting of the OS-ELM instances, and
the phase semantics (disjoint vs the printed overlapping ``if`` s). This
bench quantifies each on the reduced NSL-KDD stream: post-reconstruction
accuracy is what the choices trade off.
"""

from __future__ import annotations

import pytest

from repro.core import CentroidSet, ModelReconstructor, build_model
from repro.datasets import NSLKDDConfig, make_nslkdd_like
from repro.metrics import format_table

DRIFT_AT = 1200
RECON_START = 1500  # emulate a detection ~300 samples after the drift


@pytest.fixture(scope="module")
def streams():
    cfg = NSLKDDConfig(n_train=700, n_test=6000, drift_at=DRIFT_AT)
    return make_nslkdd_like(cfg, seed=0)


def run_reconstruction(streams, *, n_total, reset_covariance=True,
                       literal_overlap=False, seed=1):
    train, test = streams
    model = build_model(train.X, train.y, seed=seed)
    cents = CentroidSet.from_labelled_data(train.X, train.y, 2)
    rec = ModelReconstructor(
        model, cents, n_total=n_total,
        reset_covariance=reset_covariance, literal_overlap=literal_overlap,
    )
    i = RECON_START
    while True:
        step = rec.process(test.X[i])
        i += 1
        if not step.still_reconstructing:
            break
    post = test.slice(i, 6000)
    return float((model.predict(post.X) == post.y).mean())


@pytest.fixture(scope="module")
def results(streams):
    out = {}
    for n in (100, 200, 400, 800):
        out[f"N={n}"] = run_reconstruction(streams, n_total=n)
    out["N=400, no covariance reset"] = run_reconstruction(
        streams, n_total=400, reset_covariance=False
    )
    out["N=400, literal overlapping ifs"] = run_reconstruction(
        streams, n_total=400, literal_overlap=True
    )
    return out


def test_reconstruction_ablation_table(results, record_table, benchmark):
    rows = benchmark(lambda: [
        [name, round(100 * acc, 1)] for name, acc in results.items()
    ])
    record_table(format_table(
        ["configuration", "post-reconstruction accuracy %"],
        rows,
        title="ABLATION: Algorithm 2 budget & design choices (reduced NSL-KDD)",
    ))


def test_budget_matters(results, benchmark):
    accs = benchmark(lambda: results)
    # A tiny budget cannot match a full one.
    assert max(accs["N=400"], accs["N=800"]) >= accs["N=100"] - 0.02


def test_covariance_reset_helps(results, benchmark):
    """Without resetting P, the OS-ELM instances barely move during the
    retraining phases (their RLS gains have decayed over the initial
    training data), so recovery is worse."""
    accs = benchmark(lambda: results)
    assert accs["N=400"] > accs["N=400, no covariance reset"] - 0.02


def test_all_variants_recover_something(results, benchmark):
    accs = benchmark(lambda: results)
    for name, acc in accs.items():
        if "no covariance reset" in name:
            continue  # documented failure mode — may stay degraded
        assert acc > 0.75, name
